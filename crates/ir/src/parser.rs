//! Recursive-descent parser for the Fortran-like DSL.
//!
//! The grammar (loops, conditionals, multi-dimensional array assignments,
//! scalar assignments, `read(n)` declarations) covers every example
//! program in the PLDI 1991 paper:
//!
//! ```text
//! read(n);
//! for i = 1 to 10 {
//!     for j = 1 to n {
//!         a[i][j] = a[j + 10][i + 9] + 3;
//!     }
//! }
//! ```
//!
//! Subscripts may be written `a[i][j]` or `a[i, j]`.

use std::fmt;

use crate::ast::{ArrayAssign, ForLoop, IfStmt, Program, RelOp, ScalarAssign, Stmt};
use crate::expr::{ArrayRef, Expr};
use crate::lexer::{tokenize, SpannedToken, Token};

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte of the region.
    pub start: usize,
    /// One past the last byte.
    pub end: usize,
}

impl Span {
    /// Computes the 1-based `(line, column)` of the span start.
    #[must_use]
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// A parse (or lex) error with location information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where the error occurred.
    pub span: Span,
}

impl ParseError {
    /// Renders the error with a line/column position and a source excerpt.
    #[must_use]
    pub fn render(&self, source: &str) -> String {
        let (line, col) = self.span.line_col(source);
        let line_text = source.lines().nth(line - 1).unwrap_or("");
        format!(
            "parse error at {line}:{col}: {}\n  | {line_text}\n  | {}^",
            self.message,
            " ".repeat(col.saturating_sub(1))
        )
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at bytes {}..{}: {}",
            self.span.start, self.span.end, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos].token
    }

    fn peek_span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> SpannedToken {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn error<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            span: self.peek_span(),
        })
    }

    fn expect(&mut self, want: &Token) -> Result<SpannedToken, ParseError> {
        if self.peek() == want {
            Ok(self.bump())
        } else {
            self.error(format!("expected {want}, found {}", self.peek()))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Token::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => self.error(format!("expected identifier, found {other}")),
        }
    }

    fn parse_program(&mut self) -> Result<Program, ParseError> {
        let mut stmts = Vec::new();
        while *self.peek() != Token::Eof {
            stmts.push(self.parse_stmt()?);
        }
        Ok(Program { stmts })
    }

    fn parse_stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Token::For => self.parse_for(),
            Token::Read => self.parse_read(),
            Token::If => self.parse_if(),
            Token::Ident(_) => self.parse_assign(),
            other => self.error(format!(
                "expected a statement (`for`, `if`, `read`, or an assignment), found {other}"
            )),
        }
    }

    fn parse_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(&Token::LBrace)?;
        let mut body = Vec::new();
        while *self.peek() != Token::RBrace {
            if *self.peek() == Token::Eof {
                return self.error("unterminated block (missing `}`)");
            }
            body.push(self.parse_stmt()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(body)
    }

    fn parse_if(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Token::If)?;
        self.expect(&Token::LParen)?;
        let lhs = self.parse_expr()?;
        let op = match self.peek() {
            Token::Lt => RelOp::Lt,
            Token::Le => RelOp::Le,
            Token::Gt => RelOp::Gt,
            Token::Ge => RelOp::Ge,
            Token::EqEq => RelOp::Eq,
            Token::NotEq => RelOp::Ne,
            other => return self.error(format!("expected a comparison operator, found {other}")),
        };
        self.bump();
        let rhs = self.parse_expr()?;
        self.expect(&Token::RParen)?;
        let then_body = self.parse_block()?;
        let else_body = if *self.peek() == Token::Else {
            self.bump();
            self.parse_block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::If(IfStmt {
            lhs,
            op,
            rhs,
            then_body,
            else_body,
        }))
    }

    fn parse_for(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Token::For)?;
        let var = self.expect_ident()?;
        self.expect(&Token::Assign)?;
        let lower = self.parse_expr()?;
        self.expect(&Token::To)?;
        let upper = self.parse_expr()?;
        let step = if *self.peek() == Token::Step {
            self.bump();
            let negative = if *self.peek() == Token::Minus {
                self.bump();
                true
            } else {
                false
            };
            match self.peek().clone() {
                Token::Int(v) => {
                    self.bump();
                    let s = if negative { -v } else { v };
                    if s == 0 {
                        return self.error("loop step must be non-zero");
                    }
                    s
                }
                other => return self.error(format!("expected integer step, found {other}")),
            }
        } else {
            1
        };
        self.expect(&Token::LBrace)?;
        let mut body = Vec::new();
        while *self.peek() != Token::RBrace {
            if *self.peek() == Token::Eof {
                return self.error("unterminated loop body (missing `}`)");
            }
            body.push(self.parse_stmt()?);
        }
        self.expect(&Token::RBrace)?;
        Ok(Stmt::For(ForLoop {
            var,
            lower,
            upper,
            step,
            body,
        }))
    }

    fn parse_read(&mut self) -> Result<Stmt, ParseError> {
        self.expect(&Token::Read)?;
        self.expect(&Token::LParen)?;
        let name = self.expect_ident()?;
        self.expect(&Token::RParen)?;
        self.expect(&Token::Semi)?;
        Ok(Stmt::Read(name))
    }

    fn parse_assign(&mut self) -> Result<Stmt, ParseError> {
        let name = self.expect_ident()?;
        if *self.peek() == Token::LBracket {
            let subscripts = self.parse_subscripts()?;
            self.expect(&Token::Assign)?;
            let value = self.parse_expr()?;
            self.expect(&Token::Semi)?;
            Ok(Stmt::ArrayAssign(ArrayAssign {
                target: ArrayRef {
                    array: name,
                    subscripts,
                },
                value,
            }))
        } else {
            self.expect(&Token::Assign)?;
            let value = self.parse_expr()?;
            self.expect(&Token::Semi)?;
            Ok(Stmt::ScalarAssign(ScalarAssign { name, value }))
        }
    }

    /// Parses `[e][e]…` or `[e, e, …]` (or a mixture).
    fn parse_subscripts(&mut self) -> Result<Vec<Expr>, ParseError> {
        let mut subs = Vec::new();
        while *self.peek() == Token::LBracket {
            self.bump();
            loop {
                subs.push(self.parse_expr()?);
                if *self.peek() == Token::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&Token::RBracket)?;
        }
        Ok(subs)
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_term()?;
        loop {
            match self.peek() {
                Token::Plus => {
                    self.bump();
                    let rhs = self.parse_term()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                Token::Minus => {
                    self.bump();
                    let rhs = self.parse_term()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(lhs)
    }

    fn parse_term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.parse_factor()?;
        while *self.peek() == Token::Star {
            self.bump();
            let rhs = self.parse_factor()?;
            lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Token::Int(v) => {
                self.bump();
                Ok(Expr::Const(v))
            }
            Token::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.parse_factor()?)))
            }
            Token::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Token::Ident(name) => {
                self.bump();
                if *self.peek() == Token::LBracket {
                    let subscripts = self.parse_subscripts()?;
                    Ok(Expr::ArrayRead(ArrayRef {
                        array: name,
                        subscripts,
                    }))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => self.error(format!("expected an expression, found {other}")),
        }
    }
}

/// Parses a whole program.
///
/// # Errors
///
/// Returns a [`ParseError`] with span information on malformed input; use
/// [`ParseError::render`] for a friendly message.
///
/// # Examples
///
/// ```
/// use dda_ir::parse_program;
///
/// let p = parse_program("for i = 1 to 10 { a[i + 1] = a[i] + 3; }")?;
/// assert_eq!(p.max_depth(), 1);
/// # Ok::<(), dda_ir::ParseError>(())
/// ```
pub fn parse_program(source: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.parse_program()
}

/// Parses a single expression (useful in tests and examples).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input or trailing tokens.
pub fn parse_expr(source: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    let e = parser.parse_expr()?;
    if *parser.peek() != Token::Eof {
        return parser.error(format!("unexpected {} after expression", parser.peek()));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_first_example() {
        let p = parse_program("for i = 1 to 10 { a[i] = a[i + 10] + 3; }").unwrap();
        assert_eq!(p.stmts.len(), 1);
        let Stmt::For(l) = &p.stmts[0] else {
            panic!("expected loop")
        };
        assert_eq!(l.var, "i");
        assert_eq!(l.step, 1);
        assert_eq!(l.body.len(), 1);
    }

    #[test]
    fn nested_loops_and_2d_refs() {
        let p = parse_program(
            "for i1 = 1 to 10 { for i2 = 1 to 10 { a[i1][i2] = a[i2 + 10][i1 + 9]; } }",
        )
        .unwrap();
        assert_eq!(p.max_depth(), 2);
    }

    #[test]
    fn comma_subscripts_equivalent_to_brackets() {
        let p1 = parse_program("a[i, j] = 0;").unwrap();
        let p2 = parse_program("a[i][j] = 0;").unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn read_and_scalar_assign() {
        let p = parse_program("read(n); k = 2 * n + 1; a[k] = 0;").unwrap();
        assert_eq!(p.stmts.len(), 3);
        assert!(matches!(&p.stmts[0], Stmt::Read(n) if n == "n"));
        assert!(matches!(&p.stmts[1], Stmt::ScalarAssign(_)));
    }

    #[test]
    fn step_clauses() {
        let p = parse_program("for i = 10 to 1 step -2 { a[i] = 0; }").unwrap();
        let Stmt::For(l) = &p.stmts[0] else { panic!() };
        assert_eq!(l.step, -2);
        assert!(parse_program("for i = 1 to 2 step 0 { }").is_err());
    }

    #[test]
    fn precedence() {
        let e = parse_expr("1 + 2 * i - 3").unwrap();
        // (1 + (2*i)) - 3
        assert_eq!(
            e,
            Expr::Sub(
                Box::new(Expr::Add(
                    Box::new(Expr::Const(1)),
                    Box::new(Expr::Mul(
                        Box::new(Expr::Const(2)),
                        Box::new(Expr::var("i"))
                    ))
                )),
                Box::new(Expr::Const(3))
            )
        );
    }

    #[test]
    fn parens_and_negation() {
        let e = parse_expr("-(i + 1) * 2").unwrap();
        assert_eq!(
            e,
            Expr::Mul(
                Box::new(Expr::Neg(Box::new(Expr::Add(
                    Box::new(Expr::var("i")),
                    Box::new(Expr::Const(1))
                )))),
                Box::new(Expr::Const(2))
            )
        );
    }

    #[test]
    fn errors_have_spans() {
        let err = parse_program("for i = 1 to 10 { a[i] = ; }").unwrap_err();
        assert!(err.message.contains("expected an expression"));
        let rendered = err.render("for i = 1 to 10 { a[i] = ; }");
        assert!(rendered.contains("1:26"), "rendered: {rendered}");
    }

    #[test]
    fn unterminated_body() {
        let err = parse_program("for i = 1 to 10 { a[i] = 0;").unwrap_err();
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn display_parse_round_trip() {
        let src = "read(n);\nfor i = 1 to n {\n    a[i][i] = a[i - 1][i] + 1;\n}\n";
        let p = parse_program(src).unwrap();
        let p2 = parse_program(&p.to_string()).unwrap();
        assert_eq!(p, p2);
    }

    #[test]
    fn display_fixpoint_on_tricky_shapes() {
        // Negative constants and nested arithmetic: display must reach a
        // fixpoint after one reparse (ASTs may differ once, e.g.
        // Const(-2) vs Neg(Const(2)), but never twice).
        for src in [
            "a[i - (j + 1)] = -(i + 1) * 2 - 3;",
            "a[2 * (i - 3)] = (1 - i) - (2 - j);",
            "a[-i] = -(-(i));",
        ] {
            let p1 = parse_program(src).unwrap();
            let p2 = parse_program(&p1.to_string()).unwrap();
            let p3 = parse_program(&p2.to_string()).unwrap();
            assert_eq!(p2, p3, "fixpoint for {src}");
        }
    }
}
