//! Forward substitution (subsumes constant propagation).
//!
//! A scalar definition `k = E;` whose right-hand side is pure (no array
//! reads) is substituted into subsequent uses of `k`, as long as neither
//! `k` nor any variable `E` depends on has been reassigned in between.
//! Because constants are just the degenerate case `k = 5;`, this pass also
//! performs constant propagation (folding happens in
//! [`super::fold_program`]).

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Program, Stmt};
use crate::expr::Expr;
use crate::passes::rewrite::subst_scalar;

fn is_pure(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) => true,
        Expr::ArrayRead(_) => false,
        Expr::Neg(x) => is_pure(x),
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => is_pure(a) && is_pure(b),
    }
}

/// Scalars assigned anywhere within `stmts` (including loop variables).
fn assigned_in(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::ScalarAssign(a) => {
                out.insert(a.name.clone());
            }
            Stmt::For(l) => {
                out.insert(l.var.clone());
                assigned_in(&l.body, out);
            }
            Stmt::If(i) => {
                assigned_in(&i.then_body, out);
                assigned_in(&i.else_body, out);
            }
            _ => {}
        }
    }
}

type Defs = BTreeMap<String, Expr>;

fn apply_defs(e: &Expr, defs: &Defs) -> Expr {
    let mut out = e.clone();
    // Definitions are already closed (their RHS never mentions a scalar
    // that itself has a live definition), so one substitution round per
    // variable suffices.
    for (name, replacement) in defs {
        out = subst_scalar(&out, name, replacement);
    }
    out
}

/// Removes definitions invalidated by an assignment to `name`.
fn kill(defs: &mut Defs, name: &str) {
    defs.remove(name);
    defs.retain(|_, rhs| !rhs.scalar_vars().contains(&name));
}

fn walk(stmts: &mut [Stmt], defs: &mut Defs) {
    for s in stmts.iter_mut() {
        match s {
            Stmt::Read(n) => {
                let n = n.clone();
                kill(defs, &n);
            }
            Stmt::ScalarAssign(a) => {
                a.value = apply_defs(&a.value, defs);
                let name = a.name.clone();
                let value = a.value.clone();
                kill(defs, &name);
                // Record the definition if pure and not self-referential
                // (self-reference means an induction update like k = k + 1,
                // which the induction pass handles).
                if is_pure(&value) && !value.scalar_vars().contains(&name.as_str()) {
                    defs.insert(name, value);
                }
            }
            Stmt::ArrayAssign(a) => {
                for sub in &mut a.target.subscripts {
                    *sub = apply_defs(sub, defs);
                }
                a.value = apply_defs(&a.value, defs);
            }
            Stmt::If(i) => {
                i.lhs = apply_defs(&i.lhs, defs);
                i.rhs = apply_defs(&i.rhs, defs);
                // Definitions valid here hold at entry to both branches;
                // anything either branch assigns is unknown afterwards.
                let mut then_defs = defs.clone();
                walk(&mut i.then_body, &mut then_defs);
                let mut else_defs = defs.clone();
                walk(&mut i.else_body, &mut else_defs);
                let mut killed = BTreeSet::new();
                assigned_in(&i.then_body, &mut killed);
                assigned_in(&i.else_body, &mut killed);
                for k in &killed {
                    kill(defs, k);
                }
            }
            Stmt::For(l) => {
                l.lower = apply_defs(&l.lower, defs);
                l.upper = apply_defs(&l.upper, defs);
                // Definitions invalidated inside the loop must not flow in:
                // a use in iteration 2 would see the *new* value.
                let mut killed = BTreeSet::new();
                assigned_in(&l.body, &mut killed);
                killed.insert(l.var.clone());
                let mut inner: Defs = defs.clone();
                loop {
                    let before = inner.len();
                    inner.retain(|k, rhs| {
                        !killed.contains(k)
                            && !rhs.scalar_vars().iter().any(|v| killed.contains(*v))
                    });
                    if inner.len() == before {
                        break;
                    }
                }
                walk(&mut l.body, &mut inner);
                // After the loop, anything assigned inside is unknown.
                for k in &killed {
                    kill(defs, k);
                }
            }
        }
    }
}

/// Runs forward substitution over the whole program, in place.
///
/// # Examples
///
/// ```
/// use dda_ir::{parse_program, passes::forward_substitute};
///
/// let mut p = parse_program("k = n + 1; for i = 1 to 10 { a[k + i] = 0; }")?;
/// forward_substitute(&mut p);
/// assert!(p.to_string().contains("a[n + 1 + i]"), "{p}");
/// # Ok::<(), dda_ir::ParseError>(())
/// ```
pub fn forward_substitute(program: &mut Program) {
    let mut defs = Defs::new();
    walk(&mut program.stmts, &mut defs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn normalize_text(src: &str) -> String {
        let mut p = parse_program(src).unwrap();
        forward_substitute(&mut p);
        crate::passes::rewrite::fold_program(&mut p);
        p.to_string()
    }

    #[test]
    fn constant_propagation() {
        let out = normalize_text("n = 100; for i = 1 to n { a[i + n] = 0; }");
        assert!(out.contains("for i = 1 to 100"), "{out}");
        assert!(out.contains("a[i + 100]"), "{out}");
    }

    #[test]
    fn chained_definitions() {
        let out = normalize_text("k = 2; m = k + 1; a[m] = 0;");
        assert!(out.contains("a[3]"), "{out}");
    }

    #[test]
    fn reassignment_kills_definition() {
        let out = normalize_text("k = 1; a[k] = 0; k = 2; a[k] = 0;");
        assert!(out.contains("a[1]") && out.contains("a[2]"), "{out}");
    }

    #[test]
    fn loop_mutated_scalar_not_propagated_into_loop() {
        let out = normalize_text("k = 0; for i = 1 to 10 { a[k] = 0; k = k + 1; }");
        // k is an induction variable; forward substitution alone must NOT
        // replace the use of k with 0.
        assert!(out.contains("a[k]"), "{out}");
    }

    #[test]
    fn closure_at_insertion_survives_reassignment() {
        // m's definition is closed over k's value (2) at insertion time,
        // so reassigning k afterwards does not change what m means.
        let out = normalize_text("k = 1; m = k + 1; k = 5; a[m] = 0;");
        assert!(out.contains("a[2]"), "{out}");
    }

    #[test]
    fn kill_of_open_definition() {
        // m's definition references the *unknown* scalar n; once n is
        // assigned, the stale definition of m must die.
        let out = normalize_text("m = n + 1; n = 5; a[m] = 0;");
        assert!(out.contains("a[m]"), "{out}");
    }

    #[test]
    fn impure_rhs_not_substituted() {
        let out = normalize_text("k = b[3]; a[k] = 0;");
        assert!(out.contains("a[k]"), "{out}");
    }

    #[test]
    fn definition_survives_into_unrelated_loop() {
        let out = normalize_text("k = 7; for i = 1 to 10 { a[i + k] = 0; }");
        assert!(out.contains("a[i + 7]"), "{out}");
    }

    #[test]
    fn value_after_loop_unknown() {
        let out = normalize_text("k = 0; for i = 1 to 10 { k = k + 1; } a[k] = 0;");
        assert!(out.contains("a[k]"), "{out}");
    }
}
