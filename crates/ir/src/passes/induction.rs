//! Induction-variable substitution.
//!
//! Rewrites uses of scalars that advance by a constant step each iteration
//! (`k = k + c;`) into closed-form affine functions of the loop variable,
//! e.g. the paper's Section 8 example:
//!
//! ```text
//! iz = 0;
//! for i = 1 to 10 {
//!     iz = iz + 2;
//!     a[iz + n] = a[iz + 2*n + 1] + 3;   // becomes a[2*i + n] = …
//! }
//! ```
//!
//! The increment statement is kept (it still defines `k`'s value after the
//! loop); only the *uses* are rewritten, which is what makes the subscripts
//! affine.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{Program, Stmt};
use crate::expr::Expr;
use crate::passes::rewrite::{fold, rewrite_exprs, subst_scalar};

/// Matches `k = k + c` / `k = c + k` / `k = k - c`, returning `c`.
fn increment_of(name: &str, rhs: &Expr) -> Option<i64> {
    match rhs {
        Expr::Add(a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Var(v), Expr::Const(c)) if v == name => Some(*c),
            (Expr::Const(c), Expr::Var(v)) if v == name => Some(*c),
            _ => None,
        },
        Expr::Sub(a, b) => match (a.as_ref(), b.as_ref()) {
            (Expr::Var(v), Expr::Const(c)) if v == name => c.checked_neg(),
            _ => None,
        },
        _ => None,
    }
}

fn count_assignments(stmts: &[Stmt], name: &str) -> usize {
    stmts
        .iter()
        .map(|s| match s {
            Stmt::ScalarAssign(a) if a.name == name => 1,
            Stmt::For(l) => usize::from(l.var == name) + count_assignments(&l.body, name),
            Stmt::If(i) => {
                count_assignments(&i.then_body, name) + count_assignments(&i.else_body, name)
            }
            _ => 0,
        })
        .sum()
}

fn assigned_in(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::ScalarAssign(a) => {
                out.insert(a.name.clone());
            }
            Stmt::For(l) => {
                out.insert(l.var.clone());
                assigned_in(&l.body, out);
            }
            Stmt::If(i) => {
                assigned_in(&i.then_body, out);
                assigned_in(&i.else_body, out);
            }
            _ => {}
        }
    }
}

fn is_pure(e: &Expr) -> bool {
    match e {
        Expr::Const(_) | Expr::Var(_) => true,
        Expr::ArrayRead(_) => false,
        Expr::Neg(x) => is_pure(x),
        Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => is_pure(a) && is_pure(b),
    }
}

type Defs = BTreeMap<String, Expr>;

fn kill(defs: &mut Defs, name: &str) {
    defs.remove(name);
    defs.retain(|_, rhs| !rhs.scalar_vars().contains(&name));
}

/// Builds `init + c * (i - lower + extra)`.
fn closed_form(init: &Expr, c: i64, loop_var: &str, lower: &Expr, extra: i64) -> Expr {
    let iterations = Expr::Add(
        Box::new(Expr::Sub(
            Box::new(Expr::var(loop_var)),
            Box::new(lower.clone()),
        )),
        Box::new(Expr::Const(extra)),
    );
    fold(&Expr::Add(
        Box::new(init.clone()),
        Box::new(Expr::Mul(Box::new(Expr::Const(c)), Box::new(iterations))),
    ))
}

fn walk(stmts: &mut [Stmt], defs: &mut Defs) {
    for s in stmts.iter_mut() {
        match s {
            Stmt::Read(n) => {
                let n = n.clone();
                kill(defs, &n);
            }
            Stmt::ScalarAssign(a) => {
                let name = a.name.clone();
                // Close the RHS over current defs before recording.
                let mut value = a.value.clone();
                for (k, v) in defs.iter() {
                    value = subst_scalar(&value, k, v);
                }
                kill(defs, &name);
                if is_pure(&value) && !value.scalar_vars().contains(&name.as_str()) {
                    defs.insert(name, fold(&value));
                }
            }
            Stmt::ArrayAssign(_) => {}
            Stmt::If(i) => {
                // Conservative: walk each branch with a copy, then drop
                // anything either branch may have assigned.
                let mut then_defs = defs.clone();
                walk(&mut i.then_body, &mut then_defs);
                let mut else_defs = defs.clone();
                walk(&mut i.else_body, &mut else_defs);
                let mut killed = BTreeSet::new();
                assigned_in(&i.then_body, &mut killed);
                assigned_in(&i.else_body, &mut killed);
                for k in &killed {
                    kill(defs, k);
                }
            }
            Stmt::For(l) => {
                rewrite_loop(l, defs);
                let mut killed = BTreeSet::new();
                assigned_in(&l.body, &mut killed);
                killed.insert(l.var.clone());
                for k in &killed {
                    kill(defs, k);
                }
            }
        }
    }
}

fn rewrite_loop(l: &mut crate::ast::ForLoop, defs: &Defs) {
    // Scalars assigned anywhere in the body (candidates must be assigned
    // exactly once, by the increment itself).
    let mut body_assigned = BTreeSet::new();
    assigned_in(&l.body, &mut body_assigned);

    // Find induction candidates at the top level of the body. The closed
    // form counts one increment per iteration, which requires a unit
    // step; `normalize_loops` runs first in the driver, so strided loops
    // still get handled on the next round.
    let mut rewrites: Vec<(usize, String, i64, Expr)> = Vec::new(); // (pos, name, c, init)
    let candidates = if l.step == 1 { l.body.as_slice() } else { &[] };
    for (pos, s) in candidates.iter().enumerate() {
        let Stmt::ScalarAssign(a) = s else { continue };
        let Some(c) = increment_of(&a.name, &a.value) else {
            continue;
        };
        if count_assignments(&l.body, &a.name) != 1 {
            continue;
        }
        let Some(init) = defs.get(&a.name) else {
            continue;
        };
        // The init expression must be invariant over the loop.
        let init_vars: BTreeSet<&str> = init.scalar_vars().into_iter().collect();
        if init_vars.contains(l.var.as_str())
            || init_vars.iter().any(|v| body_assigned.contains(*v))
        {
            continue;
        }
        rewrites.push((pos, a.name.clone(), c, init.clone()));
    }

    for (pos, name, c, init) in rewrites {
        let before = closed_form(&init, c, &l.var, &l.lower, 0);
        let after = closed_form(&init, c, &l.var, &l.lower, 1);
        for (idx, stmt) in l.body.iter_mut().enumerate() {
            if idx == pos {
                continue; // keep the increment itself intact
            }
            let replacement = if idx < pos { &before } else { &after };
            let one = std::slice::from_mut(stmt);
            rewrite_exprs(one, &mut |e| fold(&subst_scalar(e, &name, replacement)));
        }
    }

    // Recurse with a fresh environment seeded from invariant outer defs.
    let mut killed = BTreeSet::new();
    assigned_in(&l.body, &mut killed);
    killed.insert(l.var.clone());
    let mut inner: Defs = defs
        .iter()
        .filter(|(k, rhs)| {
            !killed.contains(*k) && !rhs.scalar_vars().iter().any(|v| killed.contains(*v))
        })
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect();
    walk(&mut l.body, &mut inner);
}

/// Rewrites uses of simple induction variables (`k = k ± c` once per
/// iteration, with a known loop-invariant initial value) into affine
/// functions of the loop variable, in place.
///
/// # Examples
///
/// ```
/// use dda_ir::{parse_program, extract_accesses, passes::substitute_induction_variables};
///
/// let mut p = parse_program(
///     "iz = 0; for i = 1 to 10 { iz = iz + 2; a[iz] = 0; }",
/// )?;
/// substitute_induction_variables(&mut p);
/// let set = extract_accesses(&p);
/// let sub = set.accesses[0].subscripts[0].as_affine().expect("affine");
/// assert_eq!(sub.coeff("i"), 2);
/// assert_eq!(sub.constant_part(), 0);
/// # Ok::<(), dda_ir::ParseError>(())
/// ```
pub fn substitute_induction_variables(program: &mut Program) {
    let mut defs = Defs::new();
    walk(&mut program.stmts, &mut defs);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::extract_accesses;
    use crate::expr::AffineExpr;
    use crate::parser::parse_program;

    /// Runs the pass and returns the first subscript of access `idx` in
    /// affine form (None if it stayed non-affine).
    fn run(src: &str, idx: usize) -> Option<AffineExpr> {
        let mut p = parse_program(src).unwrap();
        substitute_induction_variables(&mut p);
        crate::passes::rewrite::fold_program(&mut p);
        let set = extract_accesses(&p);
        set.accesses[idx].subscripts[0].as_affine().cloned()
    }

    #[test]
    fn paper_section8_example() {
        // iz after the increment is 2*(i - 1 + 1) = 2i.
        let sub = run(
            "iz = 0;
             for i = 1 to 10 { iz = iz + 2; a[iz + n] = a[iz + 2 * n + 1] + 3; }",
            0,
        )
        .expect("affine");
        assert_eq!(sub.coeff("i"), 2);
        assert_eq!(sub.coeff("n"), 1);
        assert_eq!(sub.constant_part(), 0);
        let read = run(
            "iz = 0;
             for i = 1 to 10 { iz = iz + 2; a[iz + n] = a[iz + 2 * n + 1] + 3; }",
            1,
        )
        .expect("affine");
        assert_eq!(read.coeff("i"), 2);
        assert_eq!(read.coeff("n"), 2);
        assert_eq!(read.constant_part(), 1);
    }

    #[test]
    fn use_before_increment() {
        // Before the increment: k = 0 + 1*(i - 1) = i - 1.
        let sub = run("k = 0; for i = 1 to 10 { a[k] = 0; k = k + 1; }", 0).unwrap();
        assert_eq!(sub.coeff("i"), 1);
        assert_eq!(sub.constant_part(), -1);
    }

    #[test]
    fn use_after_increment() {
        let sub = run("k = 0; for i = 1 to 10 { k = k + 1; a[k] = 0; }", 0).unwrap();
        assert_eq!(sub.coeff("i"), 1);
        assert_eq!(sub.constant_part(), 0);
    }

    #[test]
    fn decrement() {
        let sub = run("k = 100; for i = 1 to 10 { k = k - 3; a[k] = 0; }", 0).unwrap();
        assert_eq!(sub.coeff("i"), -3);
        assert_eq!(sub.constant_part(), 100);
    }

    #[test]
    fn unknown_init_not_rewritten() {
        let sub = run("for i = 1 to 10 { k = k + 1; a[k] = 0; }", 0);
        // k is a mutated scalar with no known init: still a bare `k`, and
        // extraction marks it non-affine.
        assert!(sub.is_none());
    }

    #[test]
    fn doubly_assigned_not_rewritten() {
        let sub = run(
            "k = 0; for i = 1 to 10 { k = k + 1; a[k] = 0; k = k + 2; }",
            0,
        );
        assert!(sub.is_none());
    }

    #[test]
    fn increment_statement_survives() {
        let mut p = parse_program("k = 0; for i = 1 to 10 { k = k + 1; a[k] = 0; }").unwrap();
        substitute_induction_variables(&mut p);
        assert!(p.to_string().contains("k = k + 1;"), "{p}");
    }

    #[test]
    fn non_unit_lower_bound() {
        // k = (i - 5) + 1 = i - 4.
        let sub = run("k = 0; for i = 5 to 10 { k = k + 1; a[k] = 0; }", 0).unwrap();
        assert_eq!(sub.coeff("i"), 1);
        assert_eq!(sub.constant_part(), -4);
    }

    #[test]
    fn induction_var_in_inner_loop_use() {
        // The use sits in a nested loop after the increment.
        let sub = run(
            "k = 0; for i = 1 to 10 { k = k + 2; for j = 1 to 5 { a[k + j] = 0; } }",
            0,
        )
        .unwrap();
        assert_eq!(sub.coeff("i"), 2);
        assert_eq!(sub.coeff("j"), 1);
    }

    #[test]
    fn loop_variant_init_not_rewritten() {
        // init of k depends on the loop variable itself: not invariant.
        let sub = run(
            "for i = 1 to 10 { k = i; for j = 1 to 5 { k = k + 1; a[k] = 0; } }",
            0,
        );
        // k = i + (j - 1 + 1) = i + j would actually be correct here, and
        // the pass achieves it because the init `i` is invariant in the
        // inner loop.
        let sub = sub.expect("inner induction on invariant init");
        assert_eq!(sub.coeff("i"), 1);
        assert_eq!(sub.coeff("j"), 1);
    }
}
