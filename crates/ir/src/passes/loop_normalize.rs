//! Loop normalization: rewrite every loop to step 1, lower bound
//! preserved in the subscripts.
//!
//! The paper's problem statement assumes "normalized (we normalize the step
//! size to 1)" loops. A loop `for i = L to U step s` becomes
//! `for i' = 0 to T` with every use of `i` replaced by `L + s·i'`, where
//! `T = ⌊(U − L) / s⌋` when the bounds are constants. For symbolic bounds
//! the trip count is a fresh never-assigned scalar, which the access
//! extractor then treats as a symbolic constant — a sound over-approximation
//! of the iteration space.

use std::collections::BTreeSet;

use crate::ast::{Program, Stmt};
use crate::expr::Expr;
use crate::passes::rewrite::{fold, rewrite_exprs, subst_scalar};

fn collect_names(stmts: &[Stmt], out: &mut BTreeSet<String>) {
    for s in stmts {
        match s {
            Stmt::For(l) => {
                out.insert(l.var.clone());
                collect_names(&l.body, out);
            }
            Stmt::ScalarAssign(a) => {
                out.insert(a.name.clone());
            }
            Stmt::Read(n) => {
                out.insert(n.clone());
            }
            Stmt::If(i) => {
                collect_names(&i.then_body, out);
                collect_names(&i.else_body, out);
            }
            Stmt::ArrayAssign(_) => {}
        }
    }
}

struct Normalizer {
    taken: BTreeSet<String>,
    counter: usize,
}

impl Normalizer {
    fn fresh(&mut self, stem: &str) -> String {
        loop {
            let name = format!("_{stem}{}", self.counter);
            self.counter += 1;
            if self.taken.insert(name.clone()) {
                return name;
            }
        }
    }

    fn walk(&mut self, stmts: &mut [Stmt]) {
        for s in stmts {
            if let Stmt::If(i) = s {
                self.walk(&mut i.then_body);
                self.walk(&mut i.else_body);
                continue;
            }
            if let Stmt::For(l) = s {
                if l.step != 1 {
                    let step = l.step;
                    let lower = l.lower.clone();
                    let upper = l.upper.clone();
                    // i := L + s * i'  (reusing the same variable name keeps
                    // the program readable; the *meaning* of the name
                    // changes to the normalized counter).
                    let mapped = fold(&Expr::Add(
                        Box::new(lower.clone()),
                        Box::new(Expr::Mul(
                            Box::new(Expr::Const(step)),
                            Box::new(Expr::var(&l.var)),
                        )),
                    ));
                    let var = l.var.clone();
                    rewrite_exprs(&mut l.body, &mut |e| fold(&subst_scalar(e, &var, &mapped)));
                    l.lower = Expr::Const(0);
                    l.upper = match (fold(&lower), fold(&upper)) {
                        (Expr::Const(lo), Expr::Const(up)) => {
                            Expr::Const(dda_linalg::num::div_floor(up - lo, step))
                        }
                        _ => Expr::var(&self.fresh("trip")),
                    };
                    l.step = 1;
                }
                self.walk(&mut l.body);
            }
        }
    }
}

/// Rewrites every loop to a normalized step of 1, in place.
///
/// # Examples
///
/// ```
/// use dda_ir::{parse_program, extract_accesses, passes::normalize_loops};
///
/// let mut p = parse_program("for i = 1 to 9 step 2 { a[i] = 0; }")?;
/// normalize_loops(&mut p);
/// // Now: for i = 0 to 4 { a[1 + 2*i] = 0; }
/// let set = extract_accesses(&p);
/// let sub = set.accesses[0].subscripts[0].as_affine().expect("affine");
/// assert_eq!(sub.coeff("i"), 2);
/// assert_eq!(sub.constant_part(), 1);
/// # Ok::<(), dda_ir::ParseError>(())
/// ```
pub fn normalize_loops(program: &mut Program) {
    let mut taken = BTreeSet::new();
    collect_names(&program.stmts, &mut taken);
    let mut n = Normalizer { taken, counter: 0 };
    n.walk(&mut program.stmts);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::extract_accesses;
    use crate::parser::parse_program;

    #[test]
    fn constant_bounds_get_exact_trip_count() {
        let mut p = parse_program("for i = 1 to 10 step 3 { a[i] = 0; }").unwrap();
        normalize_loops(&mut p);
        let Stmt::For(l) = &p.stmts[0] else { panic!() };
        assert_eq!(l.step, 1);
        assert_eq!(l.lower, Expr::Const(0));
        assert_eq!(l.upper, Expr::Const(3)); // iterations 1, 4, 7, 10
        let set = extract_accesses(&p);
        let sub = set.accesses[0].subscripts[0].as_affine().unwrap();
        assert_eq!(sub.coeff("i"), 3);
        assert_eq!(sub.constant_part(), 1);
    }

    #[test]
    fn negative_step_descends() {
        let mut p = parse_program("for i = 10 to 1 step -1 { a[i] = 0; }").unwrap();
        normalize_loops(&mut p);
        let Stmt::For(l) = &p.stmts[0] else { panic!() };
        assert_eq!(l.upper, Expr::Const(9));
        let set = extract_accesses(&p);
        let sub = set.accesses[0].subscripts[0].as_affine().unwrap();
        assert_eq!(sub.coeff("i"), -1);
        assert_eq!(sub.constant_part(), 10);
    }

    #[test]
    fn symbolic_bounds_get_fresh_trip_symbol() {
        let mut p = parse_program("for i = 1 to n step 2 { a[i] = 0; }").unwrap();
        normalize_loops(&mut p);
        let Stmt::For(l) = &p.stmts[0] else { panic!() };
        assert!(matches!(&l.upper, Expr::Var(v) if v.starts_with("_trip")));
        let set = extract_accesses(&p);
        // The fresh trip symbol is never assigned, so it is symbolic.
        assert!(set.symbolics.iter().any(|s| s.starts_with("_trip")));
    }

    #[test]
    fn empty_constant_range() {
        let mut p = parse_program("for i = 10 to 1 step 2 { a[i] = 0; }").unwrap();
        normalize_loops(&mut p);
        let Stmt::For(l) = &p.stmts[0] else { panic!() };
        // Trip count floor((1-10)/2) = -5: an empty normalized range.
        assert_eq!(l.upper, Expr::Const(-5));
    }

    #[test]
    fn unit_step_untouched() {
        let src = "for i = 1 to 10 { a[i] = 0; }";
        let mut p = parse_program(src).unwrap();
        let orig = p.clone();
        normalize_loops(&mut p);
        assert_eq!(p, orig);
    }

    #[test]
    fn nested_strided_loops() {
        let mut p =
            parse_program("for i = 0 to 20 step 2 { for j = 0 to 20 step 5 { a[i + j] = 0; } }")
                .unwrap();
        normalize_loops(&mut p);
        let set = extract_accesses(&p);
        let sub = set.accesses[0].subscripts[0].as_affine().unwrap();
        assert_eq!(sub.coeff("i"), 2);
        assert_eq!(sub.coeff("j"), 5);
    }

    #[test]
    fn inner_bound_using_outer_strided_var() {
        let mut p =
            parse_program("for i = 1 to 9 step 2 { for j = i to 10 { a[j] = 0; } }").unwrap();
        normalize_loops(&mut p);
        let set = extract_accesses(&p);
        let inner = &set.accesses[0].loops[1];
        let lo = inner.lower.as_affine().unwrap();
        // j's lower bound i became 1 + 2*i.
        assert_eq!(lo.coeff("i"), 2);
        assert_eq!(lo.constant_part(), 1);
    }
}
