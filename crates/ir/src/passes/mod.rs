//! Normalization prepasses.
//!
//! The paper (Sections 2 and 8) assumes subscripts and bounds are integral
//! linear functions of loop variables, and notes that "optimization
//! techniques (constant propagation, induction variable and forward
//! substitution)" are used to make programs meet the conditions. These are
//! those passes, plus loop normalization (step → 1), run to a fixpoint by
//! [`normalize`].

mod forward_subst;
mod induction;
mod loop_normalize;
mod rewrite;

pub use forward_subst::forward_substitute;
pub use induction::substitute_induction_variables;
pub use loop_normalize::normalize_loops;
pub use rewrite::fold_program;

use crate::ast::Program;

/// Runs every normalization pass repeatedly until the program stops
/// changing (bounded at a small fixed number of rounds).
///
/// After this, `extract_accesses` will see affine subscripts whenever the
/// paper's model can express them.
///
/// # Examples
///
/// ```
/// use dda_ir::{parse_program, extract_accesses, passes::normalize};
///
/// let mut p = parse_program(
///     "k = 3; for i = 1 to 10 { a[k + i] = a[i] + 1; }",
/// )?;
/// normalize(&mut p);
/// let set = extract_accesses(&p);
/// let sub = set.accesses[0].subscripts[0].as_affine().expect("affine");
/// assert_eq!(sub.coeff("i"), 1);
/// assert_eq!(sub.constant_part(), 3);
/// # Ok::<(), dda_ir::ParseError>(())
/// ```
pub fn normalize(program: &mut Program) {
    for _ in 0..10 {
        let before = program.clone();
        fold_program(program);
        forward_substitute(program);
        // Steps must be 1 before induction-variable substitution (its
        // closed form counts one increment per iteration).
        normalize_loops(program);
        substitute_induction_variables(program);
        fold_program(program);
        if *program == before {
            break;
        }
    }
}
