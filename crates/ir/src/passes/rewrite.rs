//! Shared expression rewriting: substitution and constant folding.

use crate::ast::{Program, Stmt};
use crate::expr::{ArrayRef, Expr};

/// Replaces every occurrence of scalar `name` in `e` with `replacement`.
#[must_use]
pub fn subst_scalar(e: &Expr, name: &str, replacement: &Expr) -> Expr {
    match e {
        Expr::Const(_) => e.clone(),
        Expr::Var(v) => {
            if v == name {
                replacement.clone()
            } else {
                e.clone()
            }
        }
        Expr::ArrayRead(r) => Expr::ArrayRead(ArrayRef {
            array: r.array.clone(),
            subscripts: r
                .subscripts
                .iter()
                .map(|s| subst_scalar(s, name, replacement))
                .collect(),
        }),
        Expr::Neg(x) => Expr::Neg(Box::new(subst_scalar(x, name, replacement))),
        Expr::Add(a, b) => Expr::Add(
            Box::new(subst_scalar(a, name, replacement)),
            Box::new(subst_scalar(b, name, replacement)),
        ),
        Expr::Sub(a, b) => Expr::Sub(
            Box::new(subst_scalar(a, name, replacement)),
            Box::new(subst_scalar(b, name, replacement)),
        ),
        Expr::Mul(a, b) => Expr::Mul(
            Box::new(subst_scalar(a, name, replacement)),
            Box::new(subst_scalar(b, name, replacement)),
        ),
    }
}

/// Constant-folds an expression: `Const ⊕ Const` collapses, and additive /
/// multiplicative identities simplify (`x + 0`, `x * 1`, `x * 0`, `--x`).
///
/// Folding uses checked arithmetic; an overflowing fold is left unfolded.
#[must_use]
pub fn fold(e: &Expr) -> Expr {
    match e {
        Expr::Const(_) | Expr::Var(_) => e.clone(),
        Expr::ArrayRead(r) => Expr::ArrayRead(ArrayRef {
            array: r.array.clone(),
            subscripts: r.subscripts.iter().map(fold).collect(),
        }),
        Expr::Neg(x) => match fold(x) {
            Expr::Const(c) => c
                .checked_neg()
                .map_or_else(|| Expr::Neg(Box::new(Expr::Const(c))), Expr::Const),
            Expr::Neg(inner) => *inner,
            other => Expr::Neg(Box::new(other)),
        },
        Expr::Add(a, b) => {
            let (fa, fb) = (fold(a), fold(b));
            match (&fa, &fb) {
                (Expr::Const(x), Expr::Const(y)) => x.checked_add(*y).map_or_else(
                    || Expr::Add(Box::new(fa.clone()), Box::new(fb.clone())),
                    Expr::Const,
                ),
                (Expr::Const(0), _) => fb,
                (_, Expr::Const(0)) => fa,
                _ => Expr::Add(Box::new(fa), Box::new(fb)),
            }
        }
        Expr::Sub(a, b) => {
            let (fa, fb) = (fold(a), fold(b));
            match (&fa, &fb) {
                (Expr::Const(x), Expr::Const(y)) => x.checked_sub(*y).map_or_else(
                    || Expr::Sub(Box::new(fa.clone()), Box::new(fb.clone())),
                    Expr::Const,
                ),
                (_, Expr::Const(0)) => fa,
                _ => Expr::Sub(Box::new(fa), Box::new(fb)),
            }
        }
        Expr::Mul(a, b) => {
            let (fa, fb) = (fold(a), fold(b));
            match (&fa, &fb) {
                (Expr::Const(x), Expr::Const(y)) => x.checked_mul(*y).map_or_else(
                    || Expr::Mul(Box::new(fa.clone()), Box::new(fb.clone())),
                    Expr::Const,
                ),
                (Expr::Const(0), _) | (_, Expr::Const(0)) => Expr::Const(0),
                (Expr::Const(1), _) => fb,
                (_, Expr::Const(1)) => fa,
                _ => Expr::Mul(Box::new(fa), Box::new(fb)),
            }
        }
    }
}

/// Applies `f` to every expression in the program (subscripts, right-hand
/// sides, loop bounds), in place.
pub fn rewrite_exprs(stmts: &mut [Stmt], f: &mut dyn FnMut(&Expr) -> Expr) {
    for s in stmts {
        match s {
            Stmt::For(l) => {
                l.lower = f(&l.lower);
                l.upper = f(&l.upper);
                rewrite_exprs(&mut l.body, f);
            }
            Stmt::ArrayAssign(a) => {
                for sub in &mut a.target.subscripts {
                    *sub = f(sub);
                }
                a.value = f(&a.value);
            }
            Stmt::ScalarAssign(a) => {
                a.value = f(&a.value);
            }
            Stmt::If(i) => {
                i.lhs = f(&i.lhs);
                i.rhs = f(&i.rhs);
                rewrite_exprs(&mut i.then_body, f);
                rewrite_exprs(&mut i.else_body, f);
            }
            Stmt::Read(_) => {}
        }
    }
}

/// Constant-folds every expression in the program, in place.
pub fn fold_program(program: &mut Program) {
    rewrite_exprs(&mut program.stmts, &mut fold);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;

    #[test]
    fn fold_collapses_constants() {
        let e = parse_expr("2 * 3 + 4 - 1").unwrap();
        assert_eq!(fold(&e), Expr::Const(9));
    }

    #[test]
    fn fold_identities() {
        assert_eq!(fold(&parse_expr("i + 0").unwrap()), Expr::var("i"));
        assert_eq!(fold(&parse_expr("1 * i").unwrap()), Expr::var("i"));
        assert_eq!(fold(&parse_expr("0 * i").unwrap()), Expr::Const(0));
        assert_eq!(fold(&parse_expr("-(-(i))").unwrap()), Expr::var("i"));
    }

    #[test]
    fn fold_overflow_left_intact() {
        let e = Expr::Add(Box::new(Expr::Const(i64::MAX)), Box::new(Expr::Const(1)));
        assert_eq!(fold(&e), e);
    }

    #[test]
    fn subst_reaches_subscripts() {
        let e = parse_expr("a[k + 1] + k").unwrap();
        let s = subst_scalar(&e, "k", &Expr::var("i"));
        assert_eq!(s, parse_expr("a[i + 1] + i").unwrap());
    }
}
