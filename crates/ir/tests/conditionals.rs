//! Tests for the `if`/`else` extension: parsing, extraction,
//! normalization interplay, and interpretation.

use std::collections::BTreeMap;

use dda_ir::interp::execute;
use dda_ir::{extract_accesses, parse_program, passes, reference_pairs, RelOp, Stmt};

#[test]
fn parse_if_else() {
    let p = parse_program(
        "for i = 1 to 10 {
             if (i <= 5) { a[i] = 1; } else { a[i + 5] = 2; }
         }",
    )
    .unwrap();
    let Stmt::For(l) = &p.stmts[0] else { panic!() };
    let Stmt::If(i) = &l.body[0] else { panic!() };
    assert_eq!(i.op, RelOp::Le);
    assert_eq!(i.then_body.len(), 1);
    assert_eq!(i.else_body.len(), 1);
}

#[test]
fn all_relational_operators() {
    for (text, op) in [
        ("<", RelOp::Lt),
        ("<=", RelOp::Le),
        (">", RelOp::Gt),
        (">=", RelOp::Ge),
        ("==", RelOp::Eq),
        ("!=", RelOp::Ne),
    ] {
        let src = format!("if (i {text} 3) {{ a[1] = 0; }}");
        let p = parse_program(&src).unwrap_or_else(|e| panic!("{text}: {e}"));
        let Stmt::If(i) = &p.stmts[0] else { panic!() };
        assert_eq!(i.op, op, "{text}");
    }
}

#[test]
fn display_round_trips() {
    let src = "for i = 1 to 10 {
        if (i != 5) { a[i] = a[i - 1]; } else { a[0] = 0; }
    }";
    let p1 = parse_program(src).unwrap();
    let p2 = parse_program(&p1.to_string()).unwrap();
    assert_eq!(p1, p2);
}

#[test]
fn branch_accesses_marked_conditional() {
    let p = parse_program(
        "for i = 1 to 10 {
             b[i] = 1;
             if (i > 5) { a[i] = a[i - 1]; }
         }",
    )
    .unwrap();
    let set = extract_accesses(&p);
    let b = set.accesses.iter().find(|a| a.array == "b").unwrap();
    assert!(!b.conditional);
    for a in set.accesses.iter().filter(|a| a.array == "a") {
        assert!(a.conditional, "{a}");
    }
}

#[test]
fn condition_reads_are_unconditional_accesses() {
    let p = parse_program("for i = 1 to 10 { if (c[i] > 0) { a[i] = 0; } }").unwrap();
    let set = extract_accesses(&p);
    let c = set.accesses.iter().find(|a| a.array == "c").unwrap();
    assert!(!c.is_write);
    assert!(!c.conditional, "the guard itself always executes");
}

#[test]
fn interpreter_takes_the_right_branch() {
    let p = parse_program(
        "for i = 1 to 4 {
             if (i <= 2) { a[i] = 0; } else { a[i + 10] = 0; }
         }",
    )
    .unwrap();
    let t = execute(&p, &BTreeMap::new(), 10_000).unwrap();
    let elems: Vec<i64> = t.iter().map(|x| x.element[0]).collect();
    assert_eq!(elems, vec![1, 2, 13, 14]);
    // Access ids stay aligned with extraction despite branch skipping.
    let set = extract_accesses(&p);
    for touch in &t {
        assert_eq!(set.accesses[touch.access_id].array, touch.array);
    }
}

#[test]
fn normalization_preserves_conditional_behaviour() {
    let src = "k = 0;
        for i = 1 to 6 {
            k = k + 2;
            if (i != 3) { a[k] = a[k - 1]; }
        }";
    let before = {
        let p = parse_program(src).unwrap();
        execute(&p, &BTreeMap::new(), 10_000).unwrap()
    };
    let after = {
        let mut p = parse_program(src).unwrap();
        passes::normalize(&mut p);
        execute(&p, &BTreeMap::new(), 10_000).unwrap()
    };
    let strip = |ts: &[dda_ir::interp::Touch]| -> Vec<(String, Vec<i64>, bool)> {
        ts.iter()
            .map(|t| (t.array.clone(), t.element.clone(), t.is_write))
            .collect()
    };
    assert_eq!(strip(&before), strip(&after));
}

#[test]
fn forward_subst_does_not_leak_across_branches() {
    // k is reassigned in one branch only: after the if, its value is
    // unknown and must not be substituted.
    let src = "k = 1; if (n > 0) { k = 2; } a[k] = 0;";
    let mut p = parse_program(src).unwrap();
    passes::normalize(&mut p);
    let set = extract_accesses(&p);
    let a = &set.accesses[0];
    assert!(!a.is_affine(), "k is branch-dependent: {a}");
}

#[test]
fn defs_flow_into_both_branches() {
    let src = "k = 7; if (n > 0) { a[k] = 0; } else { a[k + 1] = 0; }";
    let mut p = parse_program(src).unwrap();
    passes::normalize(&mut p);
    let set = extract_accesses(&p);
    let subs: Vec<i64> = set
        .accesses
        .iter()
        .map(|a| a.subscripts[0].as_affine().unwrap().constant_part())
        .collect();
    assert_eq!(subs, vec![7, 8]);
}

#[test]
fn pairs_across_branches_are_enumerated() {
    let p = parse_program(
        "for i = 1 to 10 {
             if (i > 5) { a[i] = 1; } else { a[i + 20] = 2; }
         }",
    )
    .unwrap();
    let set = extract_accesses(&p);
    let pairs = reference_pairs(&set, false);
    assert_eq!(pairs.len(), 1, "then-write vs else-write");
}
