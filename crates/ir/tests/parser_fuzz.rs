//! Parser robustness: arbitrary input must produce a located error or a
//! program, never a panic — and valid programs survive mutation without
//! crashing downstream phases.

use dda_ir::{extract_accesses, parse_program, passes, reference_pairs};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    /// Totally arbitrary byte soup: never panic.
    #[test]
    fn arbitrary_input_never_panics(src in "\\PC{0,120}") {
        let _ = parse_program(&src);
    }

    /// Token soup drawn from the language's own vocabulary: much more
    /// likely to reach deep parser states; still never panics, and when
    /// it parses, the whole pipeline downstream must hold up.
    #[test]
    fn token_soup_never_panics(
        tokens in proptest::collection::vec(
            prop::sample::select(vec![
                "for", "to", "step", "if", "else", "read", "i", "j", "a",
                "n", "=", "==", "!=", "<", "<=", ">", "+", "-", "*", "(",
                ")", "[", "]", "{", "}", ";", ",", "1", "2", "10",
            ]),
            0..40,
        )
    ) {
        let src = tokens.join(" ");
        if let Ok(mut program) = parse_program(&src) {
            passes::normalize(&mut program);
            let set = extract_accesses(&program);
            let _ = reference_pairs(&set, true);
            // Display must reparse.
            let printed = program.to_string();
            prop_assert!(parse_program(&printed).is_ok(), "display broke: {printed}");
        }
    }

    /// Parse errors carry spans inside (or at the end of) the source.
    #[test]
    fn errors_have_valid_spans(src in "\\PC{0,80}") {
        if let Err(e) = parse_program(&src) {
            prop_assert!(e.span.start <= src.len() + 1, "span {:?}", e.span);
            // Rendering must not panic either.
            let _ = e.render(&src);
        }
    }
}
