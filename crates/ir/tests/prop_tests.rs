//! Property-based tests for the IR: parsing round-trips and — the
//! important one — semantic preservation of the normalization passes,
//! checked by executing programs before and after with the reference
//! interpreter and comparing the full access streams.

use std::collections::BTreeMap;

use dda_ir::interp::execute;
use dda_ir::{parse_program, passes};
use proptest::prelude::*;

/// The observable behaviour of a program: every array touch in execution
/// order, without the access ids (passes may renumber nothing, but ids
/// are an analysis artifact, not semantics).
fn behaviour(src: &str, normalize: bool) -> Vec<(String, Vec<i64>, bool)> {
    let mut p = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}\n{src}"));
    if normalize {
        passes::normalize(&mut p);
    }
    execute(&p, &BTreeMap::new(), 4_000_000)
        .unwrap_or_else(|e| panic!("exec: {e}\n{p}"))
        .into_iter()
        .map(|t| (t.array, t.element, t.is_write))
        .collect()
}

/// A random affine subscript over loop vars v0..v_depth plus scalar k.
fn arb_subscript(depth: usize, with_scalar: bool) -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(-2i64..=2, depth),
        -5i64..=5,
        prop::bool::ANY,
    )
        .prop_map(move |(coeffs, c, use_k)| {
            let mut s = String::new();
            for (k, a) in coeffs.iter().enumerate() {
                if *a != 0 {
                    s.push_str(&format!(" + {a} * v{k}"));
                }
            }
            if with_scalar && use_k {
                s.push_str(" + k");
            }
            format!("{c}{s}")
        })
}

/// A random program exercising the normalization passes: a scalar
/// definition, an optional induction increment, strided loops, and a few
/// array statements.
fn arb_program() -> impl Strategy<Value = String> {
    (
        1usize..=2, // depth
        proptest::collection::vec(
            (
                1i64..=3,
                3i64..=7,
                prop::sample::select(vec![1i64, 1, 2, 3, -1]),
            ),
            2,
        ),
        -10i64..=10, // scalar init
        0i64..=3,    // induction step (0 = none)
        proptest::collection::vec((any::<bool>(),), 1..=2),
    )
        .prop_flat_map(|(depth, bounds, init, istep, stmts)| {
            let subs = proptest::collection::vec(arb_subscript(depth, true), stmts.len() * 2);
            (Just(depth), Just(bounds), Just(init), Just(istep), subs)
        })
        .prop_map(|(depth, bounds, init, istep, subs)| {
            let mut src = format!("k = {init};\n");
            for (lvl, (lo, hi, step)) in bounds.iter().take(depth).enumerate() {
                if *step == 1 {
                    src.push_str(&format!("for v{lvl} = {lo} to {hi} {{\n"));
                } else if *step < 0 {
                    src.push_str(&format!("for v{lvl} = {hi} to {lo} step {step} {{\n"));
                } else {
                    src.push_str(&format!("for v{lvl} = {lo} to {hi} step {step} {{\n"));
                }
            }
            if istep > 0 {
                src.push_str(&format!("k = k + {istep};\n"));
            }
            for pair in subs.chunks(2) {
                src.push_str(&format!("arr[{}] = arr[{}] + 1;\n", pair[0], pair[1]));
            }
            for _ in 0..depth {
                src.push_str("}\n");
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Normalization must not change which elements are read and written,
    /// in which order.
    #[test]
    fn normalization_preserves_behaviour(src in arb_program()) {
        let before = behaviour(&src, false);
        let after = behaviour(&src, true);
        prop_assert_eq!(before, after, "behaviour changed for\n{}", src);
    }

    /// Display output reparses to a display fixpoint.
    #[test]
    fn display_reaches_fixpoint(src in arb_program()) {
        let p1 = parse_program(&src).unwrap();
        let p2 = parse_program(&p1.to_string()).unwrap();
        let p3 = parse_program(&p2.to_string()).unwrap();
        prop_assert_eq!(&p2, &p3, "not a fixpoint:\n{}", p2);
    }

    /// Normalized programs still display/reparse cleanly.
    #[test]
    fn normalized_display_round_trips(src in arb_program()) {
        let mut p = parse_program(&src).unwrap();
        passes::normalize(&mut p);
        let q = parse_program(&p.to_string())
            .unwrap_or_else(|e| panic!("reparse: {e}\n{p}"));
        let r = parse_program(&q.to_string()).unwrap();
        prop_assert_eq!(q, r);
    }

    /// Normalization is idempotent.
    #[test]
    fn normalization_idempotent(src in arb_program()) {
        let mut once = parse_program(&src).unwrap();
        passes::normalize(&mut once);
        let mut twice = once.clone();
        passes::normalize(&mut twice);
        prop_assert_eq!(&once, &twice, "not idempotent for\n{}", src);
    }
}
