//! Tiered exact coefficients: `i64` fast path, `i128` on demand,
//! [`Rational`] only as the last resort.
//!
//! The pre-refactor Fourier–Motzkin back-substitution built a normalized
//! [`Rational`] (one `gcd` over `i128` per row) for *every* bound it
//! examined, even though almost all dependence systems have single-digit
//! coefficients. A [`Coeff`] starts in the `Small` tier — an unnormalized
//! `i64`-component fraction whose cross products always fit `i128`, so
//! comparisons cost two multiplies and no gcd — and promotes through
//! `Wide` (`i128` components, checked ops) to `Rat` (normalized
//! [`Rational`], which reduces magnitudes and so extends the usable
//! range) only when an operation actually overflows. Values are exact in
//! every tier; only `Rat`-tier *arithmetic* can report
//! [`Error::Overflow`], and that is the same precision ceiling the
//! rational-first code had. Comparisons never fail: when cross
//! multiplication would overflow, [`Coeff::cmp`] falls back to a
//! continued-fraction descent that is exact for any operands.

#![warn(clippy::arithmetic_side_effects)]

use std::cmp::Ordering;
use std::fmt;

use crate::{Error, Rational, Result};

/// An exact fraction that keeps its components in the cheapest tier able
/// to hold them. The denominator is always positive.
///
/// # Examples
///
/// ```
/// use dda_linalg::Coeff;
///
/// let a = Coeff::ratio(7, -2)?; // -7/2, Small tier
/// assert_eq!(a.floor(), -4);
/// assert_eq!(a.ceil(), -3);
/// assert!(a < Coeff::from_int(0));
/// # Ok::<(), dda_linalg::Error>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub enum Coeff {
    /// `i64` numerator and (positive) denominator: products fit `i128`,
    /// so arithmetic and comparison are exact without any checks.
    Small {
        /// Numerator (sign-carrying).
        num: i64,
        /// Denominator, always positive.
        den: i64,
    },
    /// `i128` components after a promotion; operations are checked.
    Wide {
        /// Numerator (sign-carrying).
        num: i128,
        /// Denominator, always positive.
        den: i128,
    },
    /// The last tier: a normalized [`Rational`]. Reduction to lowest
    /// terms shrinks components, extending range beyond `Wide`.
    Rat(Rational),
}

impl Coeff {
    /// The integer zero (Small tier).
    pub const ZERO: Coeff = Coeff::Small { num: 0, den: 1 };

    /// Creates an integer coefficient in the `Small` tier.
    #[must_use]
    pub fn from_int(v: i64) -> Coeff {
        Coeff::Small { num: v, den: 1 }
    }

    /// Creates the fraction `num / den` in the `Small` tier.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DivisionByZero`] when `den == 0`; promotes to
    /// `Wide` only when fixing the denominator's sign would overflow
    /// `i64` (i.e. a `±i64::MIN` component).
    pub fn ratio(num: i64, den: i64) -> Result<Coeff> {
        if den == 0 {
            return Err(Error::DivisionByZero);
        }
        if den > 0 {
            return Ok(Coeff::Small { num, den });
        }
        match (num.checked_neg(), den.checked_neg()) {
            (Some(n), Some(d)) => Ok(Coeff::Small { num: n, den: d }),
            // i64::MIN components: widen instead of losing the value.
            _ => Coeff::ratio128(i128::from(num), i128::from(den)),
        }
    }

    /// Creates the fraction `num / den` in the cheapest tier that fits.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DivisionByZero`] when `den == 0`, or
    /// [`Error::Overflow`] for the unrepresentable `±i128::MIN`
    /// denominator sign fix.
    pub fn ratio128(num: i128, den: i128) -> Result<Coeff> {
        if den == 0 {
            return Err(Error::DivisionByZero);
        }
        let (num, den) = if den > 0 {
            (num, den)
        } else {
            (
                num.checked_neg().ok_or(Error::Overflow)?,
                den.checked_neg().ok_or(Error::Overflow)?,
            )
        };
        Ok(Coeff::demoted(num, den))
    }

    /// Picks `Small` when both components fit `i64`, else `Wide`.
    /// `den` must already be positive.
    fn demoted(num: i128, den: i128) -> Coeff {
        debug_assert!(den > 0);
        match (i64::try_from(num), i64::try_from(den)) {
            (Ok(n), Ok(d)) => Coeff::Small { num: n, den: d },
            _ => Coeff::Wide { num, den },
        }
    }

    /// The components as `(numerator, denominator)` with the denominator
    /// positive, exact in every tier.
    #[must_use]
    pub fn parts(&self) -> (i128, i128) {
        match *self {
            Coeff::Small { num, den } => (i128::from(num), i128::from(den)),
            Coeff::Wide { num, den } => (num, den),
            Coeff::Rat(r) => (r.numer(), r.denom()),
        }
    }

    /// Whether the value is an integer.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        let (n, d) = self.parts();
        n.rem_euclid(d) == 0
    }

    /// The largest integer `<= self`. Exact in every tier; never fails.
    #[must_use]
    pub fn floor(&self) -> i128 {
        let (n, d) = self.parts();
        n.div_euclid(d)
    }

    /// The smallest integer `>= self`. Exact in every tier; never fails.
    #[must_use]
    pub fn ceil(&self) -> i128 {
        let (n, d) = self.parts();
        let q = n.div_euclid(d);
        if n.rem_euclid(d) == 0 {
            q
        } else {
            // `q < n/d <= i128::MAX / 1`, so `q + 1` cannot overflow.
            q.wrapping_add(1)
        }
    }

    /// Promotes to the normalized [`Rational`] tier (always exact — the
    /// value does not change, only the representation).
    ///
    /// # Errors
    ///
    /// Never fails for a valid `Coeff` (positive denominator); the
    /// `Result` mirrors [`Rational::new`].
    pub fn to_rational(&self) -> Result<Rational> {
        match *self {
            Coeff::Rat(r) => Ok(r),
            _ => {
                let (n, d) = self.parts();
                Rational::new(n, d)
            }
        }
    }

    /// Checked addition with transparent tier promotion: `Small` operands
    /// never fail; wider operands normalize into the `Rat` tier before
    /// giving up.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] when even the normalized rational
    /// computation overflows `i128` — the same ceiling the rational-first
    /// implementation had.
    pub fn try_add(&self, rhs: &Coeff) -> Result<Coeff> {
        if let (Coeff::Small { num: n1, den: d1 }, Coeff::Small { num: n2, den: d2 }) = (self, rhs)
        {
            // i64 cross products fit i128; the sum of two i126-bounded
            // terms fits i128 as well (|n·d| < 2^126).
            let num = i128::from(*n1)
                .wrapping_mul(i128::from(*d2))
                .wrapping_add(i128::from(*n2).wrapping_mul(i128::from(*d1)));
            let den = i128::from(*d1).wrapping_mul(i128::from(*d2));
            return Ok(Coeff::demoted(num, den));
        }
        let (n1, d1) = self.parts();
        let (n2, d2) = rhs.parts();
        let wide = || -> Option<Coeff> {
            let num = n1.checked_mul(d2)?.checked_add(n2.checked_mul(d1)?)?;
            let den = d1.checked_mul(d2)?;
            Some(Coeff::demoted(num, den))
        };
        match wide() {
            Some(c) => Ok(c),
            // Promote: normalization shrinks components, so this succeeds
            // exactly when the rational-first code would have.
            None => Ok(Coeff::Rat(
                self.to_rational()?.try_add(&rhs.to_rational()?)?,
            )),
        }
    }

    /// Checked subtraction; see [`Coeff::try_add`] for the tier rules.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] past the `Rat`-tier ceiling.
    pub fn try_sub(&self, rhs: &Coeff) -> Result<Coeff> {
        self.try_add(&rhs.try_neg()?)
    }

    /// Checked multiplication; see [`Coeff::try_add`] for the tier rules.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] past the `Rat`-tier ceiling.
    pub fn try_mul(&self, rhs: &Coeff) -> Result<Coeff> {
        if let (Coeff::Small { num: n1, den: d1 }, Coeff::Small { num: n2, den: d2 }) = (self, rhs)
        {
            let num = i128::from(*n1).wrapping_mul(i128::from(*n2));
            let den = i128::from(*d1).wrapping_mul(i128::from(*d2));
            return Ok(Coeff::demoted(num, den));
        }
        let (n1, d1) = self.parts();
        let (n2, d2) = rhs.parts();
        match (n1.checked_mul(n2), d1.checked_mul(d2)) {
            (Some(num), Some(den)) => Ok(Coeff::demoted(num, den)),
            _ => Ok(Coeff::Rat(
                self.to_rational()?.try_mul(&rhs.to_rational()?)?,
            )),
        }
    }

    /// Checked negation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] only for an `i128::MIN` numerator in
    /// the `Wide` tier whose normalization does not shrink it.
    pub fn try_neg(&self) -> Result<Coeff> {
        match *self {
            Coeff::Small { num, den } => match num.checked_neg() {
                Some(n) => Ok(Coeff::Small { num: n, den }),
                // Negating any i64 cannot overflow once widened to i128.
                None => Ok(Coeff::demoted(
                    i128::from(num).wrapping_neg(),
                    i128::from(den),
                )),
            },
            Coeff::Wide { num, den } => match num.checked_neg() {
                Some(n) => Ok(Coeff::demoted(n, den)),
                None => Ok(Coeff::Rat(self.to_rational()?.try_neg()?)),
            },
            Coeff::Rat(r) => Ok(Coeff::Rat(r.try_neg()?)),
        }
    }
}

/// Exact cross-denominator comparison of `a/b` and `c/d` (`b, d > 0`)
/// that cannot overflow: a continued-fraction descent whose denominators
/// strictly shrink, so it terminates with the exact ordering.
pub(crate) fn cmp_frac(mut a: i128, mut b: i128, mut c: i128, mut d: i128) -> Ordering {
    debug_assert!(b > 0 && d > 0);
    loop {
        let (qa, ra) = (a.div_euclid(b), a.rem_euclid(b));
        let (qc, rc) = (c.div_euclid(d), c.rem_euclid(d));
        if qa != qc {
            return qa.cmp(&qc);
        }
        match (ra == 0, rc == 0) {
            (true, true) => return Ordering::Equal,
            (true, false) => return Ordering::Less,
            (false, true) => return Ordering::Greater,
            (false, false) => {
                // Equal integer parts; compare ra/b vs rc/d in (0,1),
                // which is the *inverted* comparison of d/rc vs b/ra.
                (a, b, c, d) = (d, rc, b, ra);
            }
        }
    }
}

impl PartialEq for Coeff {
    fn eq(&self, other: &Coeff) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Coeff {}

impl PartialOrd for Coeff {
    fn partial_cmp(&self, other: &Coeff) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Coeff {
    /// Exact value ordering across tiers; never panics or wraps. `Small`
    /// comparisons are two `i128` multiplies; wider operands fall back to
    /// a continued-fraction descent when cross products would overflow.
    fn cmp(&self, other: &Coeff) -> Ordering {
        if let (Coeff::Small { num: n1, den: d1 }, Coeff::Small { num: n2, den: d2 }) =
            (self, other)
        {
            let lhs = i128::from(*n1).wrapping_mul(i128::from(*d2));
            let rhs = i128::from(*n2).wrapping_mul(i128::from(*d1));
            return lhs.cmp(&rhs);
        }
        let (n1, d1) = self.parts();
        let (n2, d2) = other.parts();
        match (n1.checked_mul(d2), n2.checked_mul(d1)) {
            (Some(lhs), Some(rhs)) => lhs.cmp(&rhs),
            _ => cmp_frac(n1, d1, n2, d2),
        }
    }
}

impl From<i64> for Coeff {
    fn from(v: i64) -> Coeff {
        Coeff::from_int(v)
    }
}

impl From<Rational> for Coeff {
    fn from(r: Rational) -> Coeff {
        Coeff::Rat(r)
    }
}

impl fmt::Display for Coeff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (n, d) = self.parts();
        if d == 1 {
            write!(f, "{n}")
        } else {
            write!(f, "{n}/{d}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_tier_basics() {
        let a = Coeff::ratio(7, 2).unwrap();
        assert_eq!(a.floor(), 3);
        assert_eq!(a.ceil(), 4);
        assert!(!a.is_integer());
        assert!(Coeff::ratio(6, 2).unwrap().is_integer());
        assert_eq!(Coeff::ratio(-7, 2).unwrap().floor(), -4);
        assert_eq!(Coeff::ratio(-7, 2).unwrap().ceil(), -3);
        assert_eq!(Coeff::ratio(7, -2).unwrap(), Coeff::ratio(-7, 2).unwrap());
        assert!(Coeff::ratio(1, 0).is_err());
    }

    #[test]
    fn cross_tier_equality_and_ordering() {
        let small = Coeff::ratio(1, 2).unwrap();
        let wide = Coeff::Wide {
            num: i128::from(i64::MAX) + 1,
            den: (i128::from(i64::MAX) + 1) * 2,
        };
        let rat = Coeff::Rat(Rational::new(1, 2).unwrap());
        assert_eq!(small, wide);
        assert_eq!(small, rat);
        assert!(small < Coeff::ratio(2, 3).unwrap());
        assert!(Coeff::from_int(-1) < Coeff::ZERO);
    }

    #[test]
    fn cmp_survives_extreme_components() {
        // Cross products here overflow i128; the continued-fraction
        // fallback must still order them exactly.
        // With MAX = 2^127 - 1: a = MAX/(MAX/2) = (2^127-1)/(2^126-1),
        // which exceeds 2 by 1/(2^126-1); b = MAX/(MAX/2+1) =
        // (2^127-1)/2^126, which falls short of 2 by 1/2^126.
        let a = Coeff::Wide {
            num: i128::MAX,
            den: i128::MAX / 2,
        };
        let b = Coeff::Wide {
            num: i128::MAX,
            den: i128::MAX / 2 + 1,
        };
        let ord = a.cmp(&b);
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert_eq!(b.cmp(&b), Ordering::Equal);
        let two = Coeff::from_int(2);
        assert!(a > two);
        assert!(b < two);
        assert_eq!(ord, Ordering::Greater);
    }

    #[test]
    fn small_arithmetic_is_exact() {
        let a = Coeff::ratio(1, 2).unwrap();
        let b = Coeff::ratio(1, 3).unwrap();
        assert_eq!(a.try_add(&b).unwrap(), Coeff::ratio(5, 6).unwrap());
        assert_eq!(a.try_sub(&b).unwrap(), Coeff::ratio(1, 6).unwrap());
        assert_eq!(a.try_mul(&b).unwrap(), Coeff::ratio(1, 6).unwrap());
        assert_eq!(a.try_neg().unwrap(), Coeff::ratio(-1, 2).unwrap());
    }

    #[test]
    fn promotion_small_to_wide() {
        let big = Coeff::from_int(i64::MAX);
        let sum = big.try_add(&Coeff::from_int(1)).unwrap();
        assert!(matches!(sum, Coeff::Wide { .. }));
        assert_eq!(sum.parts(), (i128::from(i64::MAX) + 1, 1));
    }

    #[test]
    fn promotion_wide_to_rat_via_normalization() {
        // Unnormalized wide operands whose cross products overflow i128
        // but whose reduced forms are tiny: the Rat tier rescues the op.
        let a = Coeff::Wide {
            num: i128::MAX / 2,
            den: i128::MAX / 2,
        }; // == 1
        let b = Coeff::Wide {
            num: i128::MAX / 3,
            den: i128::MAX / 3,
        }; // == 1
        let sum = a.try_add(&b).unwrap();
        assert_eq!(sum, Coeff::from_int(2));
        assert!(matches!(sum, Coeff::Rat(_)));
    }

    #[test]
    fn rat_tier_ceiling_matches_rational() {
        // Normalized operands that overflow even the Rational tier must
        // error exactly like Rational does.
        let a = Coeff::Rat(Rational::new(i128::MAX, 1).unwrap());
        let b = Coeff::Rat(Rational::new(1, 1).unwrap());
        assert_eq!(a.try_add(&b), Err(Error::Overflow));
        assert_eq!(
            Rational::new(i128::MAX, 1)
                .unwrap()
                .try_add(&Rational::new(1, 1).unwrap()),
            Err(Error::Overflow)
        );
    }

    #[test]
    fn i64_min_den_widens() {
        let c = Coeff::ratio(1, i64::MIN).unwrap();
        assert_eq!(c.parts(), (-1, 1i128 << 63));
        assert!(c < Coeff::ZERO);
    }

    #[test]
    fn display_matches_value() {
        assert_eq!(Coeff::from_int(3).to_string(), "3");
        assert_eq!(Coeff::ratio(-1, 2).unwrap().to_string(), "-1/2");
    }
}
