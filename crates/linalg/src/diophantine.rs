//! Integral solution of linear systems `A x = b`.
//!
//! The extended GCD test asks: ignoring loop bounds, does the subscript
//! equality system have *any* integer solution? [`solve`] answers that and,
//! when the answer is yes, returns the full solution lattice
//! `x = x₀ + U_free · t` so the caller can re-express the bound constraints
//! in terms of the free variables `t` — the variable change at the heart of
//! the paper's preprocessing step.

use crate::factor::{factorize, Factorization};
use crate::{num, Error, Matrix, Result};

/// The complete integral solution set of `A x = b`.
///
/// Every integer solution is `particular + basis · t` for exactly one
/// integer vector `t` of length [`num_free`](Solution::num_free), and every
/// such `t` yields a solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    particular: Vec<i64>,
    /// Columns of `U` corresponding to free `t` variables, as an
    /// `n × num_free` matrix.
    basis: Matrix,
    factorization: Factorization,
    fixed_t: Vec<i64>,
}

impl Solution {
    /// A particular integer solution `x₀`.
    #[must_use]
    pub fn particular(&self) -> &[i64] {
        &self.particular
    }

    /// The lattice basis: an `n × num_free` matrix whose columns span the
    /// solution set's direction space.
    #[must_use]
    pub fn basis(&self) -> &Matrix {
        &self.basis
    }

    /// Number of free variables (degrees of freedom).
    #[must_use]
    pub fn num_free(&self) -> usize {
        self.basis.cols()
    }

    /// The underlying unimodular/echelon factorization.
    #[must_use]
    pub fn factorization(&self) -> &Factorization {
        &self.factorization
    }

    /// The determined `t` values for the pivot variables.
    #[must_use]
    pub fn fixed_t(&self) -> &[i64] {
        &self.fixed_t
    }

    /// Evaluates the solution at a free-variable assignment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `t.len() != self.num_free()` and
    /// [`Error::Overflow`] on overflow.
    pub fn at(&self, t: &[i64]) -> Result<Vec<i64>> {
        let offset = self.basis.mul_vec(t)?;
        self.particular
            .iter()
            .zip(&offset)
            .map(|(&p, &o)| num::add(p, o))
            .collect()
    }
}

/// Solves `a · x = b` over the integers.
///
/// Returns `Ok(None)` when the system has no integer solution (the
/// references are independent regardless of loop bounds), and
/// `Ok(Some(solution))` otherwise.
///
/// # Errors
///
/// Returns [`Error::Overflow`] if intermediate arithmetic overflows and
/// [`Error::ShapeMismatch`] if `b.len() != a.rows()`.
///
/// # Examples
///
/// The paper's first example, `i = i' + 10` with no solution inside the
/// bounds but infinitely many without:
///
/// ```
/// use dda_linalg::{Matrix, diophantine::solve};
///
/// let a = Matrix::from_rows(&[vec![1, -1]]); // i - i' = -10
/// let sol = solve(&a, &[-10])?.expect("integral solutions exist");
/// assert_eq!(sol.num_free(), 1);
/// let x = sol.at(&[5])?;
/// assert_eq!(x[0] - x[1], -10);
/// # Ok::<(), dda_linalg::Error>(())
/// ```
pub fn solve(a: &Matrix, b: &[i64]) -> Result<Option<Solution>> {
    if b.len() != a.rows() {
        return Err(Error::ShapeMismatch {
            expected: format!("rhs of len {}", a.rows()),
            found: format!("len {}", b.len()),
        });
    }
    let f = factorize(a)?;
    let n = a.cols();
    let rank = f.rank();

    // Forward-substitute E t = b. Pivot columns 0..rank get fixed values;
    // non-pivot rows must have zero residual.
    let mut fixed_t = vec![0i64; rank];
    let mut next_pivot = 0usize;
    #[allow(clippy::needless_range_loop)] // r/j index three matrices at once
    for r in 0..a.rows() {
        let is_pivot_row = next_pivot < rank && f.pivot_rows[next_pivot] == r;
        let upto = if is_pivot_row { next_pivot } else { rank };
        let mut resid = b[r];
        for j in 0..upto {
            resid = num::sub(resid, num::mul(f.echelon[(r, j)], fixed_t[j])?)?;
        }
        if is_pivot_row {
            let pivot = f.echelon[(r, next_pivot)];
            if resid % pivot != 0 {
                return Ok(None); // gcd does not divide: no integer solution
            }
            fixed_t[next_pivot] = resid / pivot;
            next_pivot += 1;
        } else if resid != 0 {
            return Ok(None); // inconsistent equation
        }
    }

    // particular x0 = U[:, 0..rank] * fixed_t ; basis = U[:, rank..n].
    let mut particular = vec![0i64; n];
    for (i, p) in particular.iter_mut().enumerate() {
        let mut acc = 0i64;
        for (j, &t) in fixed_t.iter().enumerate() {
            acc = num::add(acc, num::mul(f.u[(i, j)], t)?)?;
        }
        *p = acc;
    }
    let mut basis = Matrix::zeros(n, n - rank);
    for i in 0..n {
        for j in rank..n {
            basis[(i, j - rank)] = f.u[(i, j)];
        }
    }

    Ok(Some(Solution {
        particular,
        basis,
        factorization: f,
        fixed_t,
    }))
}

/// Builds a Farkas-style refutation of `a · x = b` over the integers: a
/// rational row combination `y = numer / denom` (one numerator per row of
/// `a`, `denom ≥ 1`) such that every entry of `yᵀ a` is an integer while
/// `yᵀ b` is not — or `yᵀ a = 0` with `yᵀ b ≠ 0`. Either way
/// `yᵀ a x = yᵀ b` is unsatisfiable by any integer `x`, so the combination
/// is independently checkable evidence that [`solve`] correctly returned
/// `None`.
///
/// Returns `None` when the system *is* integrally solvable, or when the
/// witness does not fit in `i64`/`i128` arithmetic. Callers must decide
/// feasibility with [`solve`]; this only reconstructs evidence after the
/// fact and never alters the verdict.
#[must_use]
pub fn refute(a: &Matrix, b: &[i64]) -> Option<(Vec<i64>, i64)> {
    if b.len() != a.rows() {
        return None;
    }
    let f = factorize(a).ok()?;
    let m = a.rows();
    let rank = f.rank();

    // Replay the forward substitution of `solve`, but alongside each fixed
    // t value keep the *functional* that produced it: a rational row
    // vector over the original rows (numerators over a positive
    // denominator) with  t_k = func_k · b. The residual functional of row
    // r is then e_r − Σ E[r][j]·func_j; at a divisibility or consistency
    // failure, that functional (scaled by the pivot) is the witness: its
    // product with A is integral by echelon structure while its product
    // with b is the fractional (or nonzero) residual observed.
    let mut t_funcs: Vec<(Vec<i128>, i128)> = Vec::with_capacity(rank);
    let mut fixed_t: Vec<i128> = Vec::with_capacity(rank);
    let mut next_pivot = 0usize;
    for r in 0..m {
        let is_pivot_row = next_pivot < rank && f.pivot_rows[next_pivot] == r;
        // Entries right of the next pivot are zero in both pivot and
        // skipped rows, so only the already-fixed t's can contribute.
        let upto = if is_pivot_row { next_pivot } else { rank }.min(t_funcs.len());
        let den = t_funcs[..upto]
            .iter()
            .try_fold(1i128, |acc, (_, d)| acc.checked_mul(d / gcd128(acc, *d)))?;
        let mut num = vec![0i128; m];
        num[r] = den;
        let mut resid = i128::from(b[r]);
        for (j, (func, func_den)) in t_funcs.iter().enumerate().take(upto) {
            let e = i128::from(f.echelon[(r, j)]);
            resid = resid.checked_sub(e.checked_mul(fixed_t[j])?)?;
            let scale = den / func_den;
            for (ni, &tn) in num.iter_mut().zip(func) {
                *ni = ni.checked_sub(e.checked_mul(tn)?.checked_mul(scale)?)?;
            }
        }
        if is_pivot_row {
            let pivot = i128::from(f.echelon[(r, next_pivot)]);
            if resid % pivot != 0 {
                // y = (residual functional)/pivot: yᵀE = e_k, so yᵀA is a
                // row of U⁻¹ (integral) while yᵀb = resid/pivot ∉ ℤ.
                return reduce_fit(num, den.checked_mul(pivot)?);
            }
            fixed_t.push(resid / pivot);
            t_funcs.push((num, den.checked_mul(pivot)?));
            next_pivot += 1;
        } else if resid != 0 {
            // y = residual functional: yᵀE = 0 ⇒ yᵀA = 0, yᵀb = resid ≠ 0.
            return reduce_fit(num, den);
        }
    }
    None // integrally solvable: nothing to refute
}

/// Cancels the common gcd of a rational row vector and narrows it to i64.
fn reduce_fit(mut num: Vec<i128>, mut den: i128) -> Option<(Vec<i64>, i64)> {
    debug_assert!(den > 0);
    let g = num.iter().fold(den, |acc, &n| gcd128(acc, n));
    if g > 1 {
        for n in &mut num {
            *n /= g;
        }
        den /= g;
    }
    let numer: Option<Vec<i64>> = num.into_iter().map(|n| i64::try_from(n).ok()).collect();
    Some((numer?, i64::try_from(den).ok()?))
}

/// Euclidean gcd on `i128` magnitudes. Safe here because the first operand
/// is always a positive denominator, which bounds the result below
/// `i128::MAX`.
fn gcd128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    i128::try_from(a).expect("gcd bounded by positive operand")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(a: &Matrix, b: &[i64], sol: &Solution) {
        // particular is a solution
        assert_eq!(a.mul_vec(sol.particular()).unwrap(), b);
        // each basis column is in the nullspace
        for c in 0..sol.num_free() {
            let col = sol.basis().col(c);
            let img = a.mul_vec(&col).unwrap();
            assert!(img.iter().all(|&v| v == 0), "basis column in nullspace");
        }
    }

    #[test]
    fn gcd_divisibility_gate() {
        // 2x + 4y = 7 has no integer solution.
        let a = Matrix::from_rows(&[vec![2, 4]]);
        assert_eq!(solve(&a, &[7]).unwrap(), None);
        // 2x + 4y = 6 does.
        let sol = solve(&a, &[6]).unwrap().unwrap();
        verify(&a, &[6], &sol);
        assert_eq!(sol.num_free(), 1);
    }

    #[test]
    fn inconsistent_rows() {
        // x + y = 1 and 2x + 2y = 3: inconsistent.
        let a = Matrix::from_rows(&[vec![1, 1], vec![2, 2]]);
        assert_eq!(solve(&a, &[1, 3]).unwrap(), None);
        // ... but = 2 is consistent (rank 1, one free var).
        let sol = solve(&a, &[1, 2]).unwrap().unwrap();
        verify(&a, &[1, 2], &sol);
        assert_eq!(sol.num_free(), 1);
    }

    #[test]
    fn full_rank_unique_solution() {
        let a = Matrix::from_rows(&[vec![1, 0], vec![0, 1]]);
        let sol = solve(&a, &[3, -4]).unwrap().unwrap();
        assert_eq!(sol.particular(), &[3, -4]);
        assert_eq!(sol.num_free(), 0);
    }

    #[test]
    fn paper_coupled_subscripts() {
        // a[i1][i2] = a[i2+10][i1+9]: i1 = i2' + 10, i2 = i1' + 9
        // vars (i1, i2, i1', i2'):
        let a = Matrix::from_rows(&[vec![1, 0, 0, -1], vec![0, 1, -1, 0]]);
        let sol = solve(&a, &[10, 9]).unwrap().unwrap();
        verify(&a, &[10, 9], &sol);
        assert_eq!(sol.num_free(), 2);
    }

    #[test]
    fn at_evaluates_lattice_points() {
        let a = Matrix::from_rows(&[vec![3, 5]]);
        let sol = solve(&a, &[1]).unwrap().unwrap();
        for t in -5..5 {
            let x = sol.at(&[t]).unwrap();
            assert_eq!(3 * x[0] + 5 * x[1], 1);
        }
    }

    #[test]
    fn empty_system_all_free() {
        let a = Matrix::zeros(0, 3);
        let sol = solve(&a, &[]).unwrap().unwrap();
        assert_eq!(sol.num_free(), 3);
        assert_eq!(sol.particular(), &[0, 0, 0]);
    }

    #[test]
    fn zero_rows_consistent_or_not() {
        let a = Matrix::zeros(1, 2);
        assert!(solve(&a, &[0]).unwrap().is_some());
        assert_eq!(solve(&a, &[1]).unwrap(), None);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Matrix::from_rows(&[vec![1, 2]]);
        assert!(matches!(
            solve(&a, &[1, 2]),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    /// The independent check a proof kernel applies to a refutation: the
    /// combination must make every column of `A` integral while leaving
    /// `b` fractional, or annihilate `A` while leaving `b` nonzero.
    fn refutation_holds(a: &Matrix, b: &[i64], numer: &[i64], denom: i64) -> bool {
        assert!(denom >= 1);
        assert_eq!(numer.len(), a.rows());
        let col_sum = |j: usize| -> i128 {
            (0..a.rows())
                .map(|r| i128::from(numer[r]) * i128::from(a[(r, j)]))
                .sum()
        };
        let sums: Vec<i128> = (0..a.cols()).map(col_sum).collect();
        let sb: i128 = numer
            .iter()
            .zip(b)
            .map(|(&y, &v)| i128::from(y) * i128::from(v))
            .sum();
        let d = i128::from(denom);
        let fractional = sums.iter().all(|s| s % d == 0) && sb % d != 0;
        let annihilating = sums.iter().all(|&s| s == 0) && sb != 0;
        fractional || annihilating
    }

    fn assert_refutes(a: &Matrix, b: &[i64]) {
        assert_eq!(solve(a, b).unwrap(), None, "system must be infeasible");
        let (numer, denom) = refute(a, b).expect("refutation exists");
        assert!(
            refutation_holds(a, b, &numer, denom),
            "refutation {numer:?}/{denom} fails the kernel check"
        );
    }

    #[test]
    fn refute_gcd_divisibility() {
        // 2x + 4y = 7: y = 1/2 exposes the fractional rhs.
        let a = Matrix::from_rows(&[vec![2, 4]]);
        assert_refutes(&a, &[7]);
    }

    #[test]
    fn refute_inconsistent_rows() {
        // x + y = 1 and 2x + 2y = 3: 2·row0 − row1 gives 0 = -1.
        let a = Matrix::from_rows(&[vec![1, 1], vec![2, 2]]);
        assert_refutes(&a, &[1, 3]);
    }

    #[test]
    fn refute_zero_row_nonzero_rhs() {
        let a = Matrix::zeros(1, 2);
        assert_refutes(&a, &[1]);
    }

    #[test]
    fn refute_second_pivot_failure() {
        // x = 1 forces 3y = 7 − 1·... : divisibility fails at a later
        // pivot, exercising the functional propagation through fixed t's.
        let a = Matrix::from_rows(&[vec![1, 0], vec![1, 3]]);
        assert_refutes(&a, &[1, 3]);
    }

    #[test]
    fn refute_mixed_rank_deficient() {
        // Rank-1 system with both a consistent duplicate and an
        // inconsistent scaled copy.
        let a = Matrix::from_rows(&[vec![2, -2], vec![4, -4], vec![6, -6]]);
        assert_refutes(&a, &[2, 4, 7]);
    }

    #[test]
    fn refute_declines_feasible_systems() {
        let a = Matrix::from_rows(&[vec![2, 4]]);
        assert!(refute(&a, &[6]).is_none());
        let id = Matrix::from_rows(&[vec![1, 0], vec![0, 1]]);
        assert!(refute(&id, &[3, -4]).is_none());
        assert!(refute(&Matrix::zeros(1, 2), &[0]).is_none());
    }

    #[test]
    fn refute_agrees_with_solve_on_small_systems() {
        // Exhaustive 2×2 sweep: refute returns Some exactly when solve
        // returns None, and every returned witness passes the check.
        let vals = [-3i64, -1, 0, 1, 2, 4];
        for &a00 in &vals {
            for &a01 in &vals {
                for &a10 in &vals {
                    for &a11 in &vals {
                        let a = Matrix::from_rows(&[vec![a00, a01], vec![a10, a11]]);
                        for &b0 in &vals {
                            for &b1 in &vals {
                                let b = [b0, b1];
                                let infeasible = matches!(solve(&a, &b), Ok(None));
                                match refute(&a, &b) {
                                    Some((numer, denom)) => {
                                        assert!(infeasible);
                                        assert!(refutation_holds(&a, &b, &numer, denom));
                                    }
                                    None => assert!(!infeasible),
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}
