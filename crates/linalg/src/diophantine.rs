//! Integral solution of linear systems `A x = b`.
//!
//! The extended GCD test asks: ignoring loop bounds, does the subscript
//! equality system have *any* integer solution? [`solve`] answers that and,
//! when the answer is yes, returns the full solution lattice
//! `x = x₀ + U_free · t` so the caller can re-express the bound constraints
//! in terms of the free variables `t` — the variable change at the heart of
//! the paper's preprocessing step.

use crate::factor::{factorize, Factorization};
use crate::{num, Error, Matrix, Result};

/// The complete integral solution set of `A x = b`.
///
/// Every integer solution is `particular + basis · t` for exactly one
/// integer vector `t` of length [`num_free`](Solution::num_free), and every
/// such `t` yields a solution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Solution {
    particular: Vec<i64>,
    /// Columns of `U` corresponding to free `t` variables, as an
    /// `n × num_free` matrix.
    basis: Matrix,
    factorization: Factorization,
    fixed_t: Vec<i64>,
}

impl Solution {
    /// A particular integer solution `x₀`.
    #[must_use]
    pub fn particular(&self) -> &[i64] {
        &self.particular
    }

    /// The lattice basis: an `n × num_free` matrix whose columns span the
    /// solution set's direction space.
    #[must_use]
    pub fn basis(&self) -> &Matrix {
        &self.basis
    }

    /// Number of free variables (degrees of freedom).
    #[must_use]
    pub fn num_free(&self) -> usize {
        self.basis.cols()
    }

    /// The underlying unimodular/echelon factorization.
    #[must_use]
    pub fn factorization(&self) -> &Factorization {
        &self.factorization
    }

    /// The determined `t` values for the pivot variables.
    #[must_use]
    pub fn fixed_t(&self) -> &[i64] {
        &self.fixed_t
    }

    /// Evaluates the solution at a free-variable assignment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `t.len() != self.num_free()` and
    /// [`Error::Overflow`] on overflow.
    pub fn at(&self, t: &[i64]) -> Result<Vec<i64>> {
        let offset = self.basis.mul_vec(t)?;
        self.particular
            .iter()
            .zip(&offset)
            .map(|(&p, &o)| num::add(p, o))
            .collect()
    }
}

/// Solves `a · x = b` over the integers.
///
/// Returns `Ok(None)` when the system has no integer solution (the
/// references are independent regardless of loop bounds), and
/// `Ok(Some(solution))` otherwise.
///
/// # Errors
///
/// Returns [`Error::Overflow`] if intermediate arithmetic overflows and
/// [`Error::ShapeMismatch`] if `b.len() != a.rows()`.
///
/// # Examples
///
/// The paper's first example, `i = i' + 10` with no solution inside the
/// bounds but infinitely many without:
///
/// ```
/// use dda_linalg::{Matrix, diophantine::solve};
///
/// let a = Matrix::from_rows(&[vec![1, -1]]); // i - i' = -10
/// let sol = solve(&a, &[-10])?.expect("integral solutions exist");
/// assert_eq!(sol.num_free(), 1);
/// let x = sol.at(&[5])?;
/// assert_eq!(x[0] - x[1], -10);
/// # Ok::<(), dda_linalg::Error>(())
/// ```
pub fn solve(a: &Matrix, b: &[i64]) -> Result<Option<Solution>> {
    if b.len() != a.rows() {
        return Err(Error::ShapeMismatch {
            expected: format!("rhs of len {}", a.rows()),
            found: format!("len {}", b.len()),
        });
    }
    let f = factorize(a)?;
    let n = a.cols();
    let rank = f.rank();

    // Forward-substitute E t = b. Pivot columns 0..rank get fixed values;
    // non-pivot rows must have zero residual.
    let mut fixed_t = vec![0i64; rank];
    let mut next_pivot = 0usize;
    #[allow(clippy::needless_range_loop)] // r/j index three matrices at once
    for r in 0..a.rows() {
        let is_pivot_row = next_pivot < rank && f.pivot_rows[next_pivot] == r;
        let upto = if is_pivot_row { next_pivot } else { rank };
        let mut resid = b[r];
        for j in 0..upto {
            resid = num::sub(resid, num::mul(f.echelon[(r, j)], fixed_t[j])?)?;
        }
        if is_pivot_row {
            let pivot = f.echelon[(r, next_pivot)];
            if resid % pivot != 0 {
                return Ok(None); // gcd does not divide: no integer solution
            }
            fixed_t[next_pivot] = resid / pivot;
            next_pivot += 1;
        } else if resid != 0 {
            return Ok(None); // inconsistent equation
        }
    }

    // particular x0 = U[:, 0..rank] * fixed_t ; basis = U[:, rank..n].
    let mut particular = vec![0i64; n];
    for (i, p) in particular.iter_mut().enumerate() {
        let mut acc = 0i64;
        for (j, &t) in fixed_t.iter().enumerate() {
            acc = num::add(acc, num::mul(f.u[(i, j)], t)?)?;
        }
        *p = acc;
    }
    let mut basis = Matrix::zeros(n, n - rank);
    for i in 0..n {
        for j in rank..n {
            basis[(i, j - rank)] = f.u[(i, j)];
        }
    }

    Ok(Some(Solution {
        particular,
        basis,
        factorization: f,
        fixed_t,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verify(a: &Matrix, b: &[i64], sol: &Solution) {
        // particular is a solution
        assert_eq!(a.mul_vec(sol.particular()).unwrap(), b);
        // each basis column is in the nullspace
        for c in 0..sol.num_free() {
            let col = sol.basis().col(c);
            let img = a.mul_vec(&col).unwrap();
            assert!(img.iter().all(|&v| v == 0), "basis column in nullspace");
        }
    }

    #[test]
    fn gcd_divisibility_gate() {
        // 2x + 4y = 7 has no integer solution.
        let a = Matrix::from_rows(&[vec![2, 4]]);
        assert_eq!(solve(&a, &[7]).unwrap(), None);
        // 2x + 4y = 6 does.
        let sol = solve(&a, &[6]).unwrap().unwrap();
        verify(&a, &[6], &sol);
        assert_eq!(sol.num_free(), 1);
    }

    #[test]
    fn inconsistent_rows() {
        // x + y = 1 and 2x + 2y = 3: inconsistent.
        let a = Matrix::from_rows(&[vec![1, 1], vec![2, 2]]);
        assert_eq!(solve(&a, &[1, 3]).unwrap(), None);
        // ... but = 2 is consistent (rank 1, one free var).
        let sol = solve(&a, &[1, 2]).unwrap().unwrap();
        verify(&a, &[1, 2], &sol);
        assert_eq!(sol.num_free(), 1);
    }

    #[test]
    fn full_rank_unique_solution() {
        let a = Matrix::from_rows(&[vec![1, 0], vec![0, 1]]);
        let sol = solve(&a, &[3, -4]).unwrap().unwrap();
        assert_eq!(sol.particular(), &[3, -4]);
        assert_eq!(sol.num_free(), 0);
    }

    #[test]
    fn paper_coupled_subscripts() {
        // a[i1][i2] = a[i2+10][i1+9]: i1 = i2' + 10, i2 = i1' + 9
        // vars (i1, i2, i1', i2'):
        let a = Matrix::from_rows(&[vec![1, 0, 0, -1], vec![0, 1, -1, 0]]);
        let sol = solve(&a, &[10, 9]).unwrap().unwrap();
        verify(&a, &[10, 9], &sol);
        assert_eq!(sol.num_free(), 2);
    }

    #[test]
    fn at_evaluates_lattice_points() {
        let a = Matrix::from_rows(&[vec![3, 5]]);
        let sol = solve(&a, &[1]).unwrap().unwrap();
        for t in -5..5 {
            let x = sol.at(&[t]).unwrap();
            assert_eq!(3 * x[0] + 5 * x[1], 1);
        }
    }

    #[test]
    fn empty_system_all_free() {
        let a = Matrix::zeros(0, 3);
        let sol = solve(&a, &[]).unwrap().unwrap();
        assert_eq!(sol.num_free(), 3);
        assert_eq!(sol.particular(), &[0, 0, 0]);
    }

    #[test]
    fn zero_rows_consistent_or_not() {
        let a = Matrix::zeros(1, 2);
        assert!(solve(&a, &[0]).unwrap().is_some());
        assert_eq!(solve(&a, &[1]).unwrap(), None);
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let a = Matrix::from_rows(&[vec![1, 2]]);
        assert!(matches!(
            solve(&a, &[1, 2]),
            Err(Error::ShapeMismatch { .. })
        ));
    }
}
