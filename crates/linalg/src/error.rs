use std::fmt;

/// Errors produced by exact linear algebra routines.
///
/// The dependence analyzer treats any error as "give up and assume
/// dependence", which is always sound.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// An intermediate integer computation overflowed the checked range.
    Overflow,
    /// A division by zero was attempted (e.g. a rational with zero
    /// denominator).
    DivisionByZero,
    /// Operand shapes do not match (matrix × vector, row lengths, …).
    ShapeMismatch {
        /// Shape the operation expected.
        expected: String,
        /// Shape it actually received.
        found: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Overflow => write!(f, "integer overflow in exact arithmetic"),
            Error::DivisionByZero => write!(f, "division by zero"),
            Error::ShapeMismatch { expected, found } => {
                write!(f, "shape mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl std::error::Error for Error {}
