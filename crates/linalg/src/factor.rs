//! Unimodular × echelon factorization by extended Gaussian elimination.
//!
//! Banerjee's extended GCD test rests on factoring an integer matrix `A`
//! (one row per equation) into `A · U = E` where `U` is unimodular
//! (determinant ±1, so `x = U t` ranges over *all* integer vectors exactly
//! when `t` does) and `E` is in column-echelon form, making `E t = b`
//! solvable by simple forward substitution.

use crate::{num, Matrix, Result};

/// The result of factoring `A · U = E`.
///
/// `U` is unimodular and `E` is column-echelon: for the `k`-th pivot row
/// `r_k`, `E[r_k][k] > 0` and `E[r_k][j] == 0` for all `j > k`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Factorization {
    /// The unimodular transform (`n × n` for an `m × n` input).
    pub u: Matrix,
    /// The column-echelon image `E = A · U`.
    pub echelon: Matrix,
    /// For each pivot column `k`, the row holding its pivot, in column
    /// order. `pivot_rows.len()` is the rank of `A`.
    pub pivot_rows: Vec<usize>,
}

impl Factorization {
    /// The rank of the factored matrix.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.pivot_rows.len()
    }
}

/// Factors `a` into a unimodular `U` and a column-echelon `E` with
/// `a · U = E`.
///
/// This is the "extension to Gaussian elimination" of the paper: within
/// each row, column operations (each unimodular) run the Euclidean
/// algorithm across the active columns until a single non-zero entry — the
/// gcd of the originals — remains in the pivot column.
///
/// # Errors
///
/// Returns [`crate::Error::Overflow`] if an intermediate value overflows
/// `i64`.
///
/// # Examples
///
/// ```
/// use dda_linalg::{Matrix, factor::factorize};
///
/// // A single equation 2x + 4y: the pivot becomes gcd(2, 4) = 2.
/// let a = Matrix::from_rows(&[vec![2, 4]]);
/// let f = factorize(&a)?;
/// assert_eq!(f.echelon[(0, 0)], 2);
/// assert_eq!(f.echelon[(0, 1)], 0);
/// assert_eq!(a.mul_mat(&f.u)?, f.echelon);
/// # Ok::<(), dda_linalg::Error>(())
/// ```
pub fn factorize(a: &Matrix) -> Result<Factorization> {
    let (m, n) = (a.rows(), a.cols());
    let mut e = a.clone();
    let mut u = Matrix::identity(n);
    let mut pivot_rows = Vec::new();
    let mut p = 0; // next pivot column

    for r in 0..m {
        if p >= n {
            break;
        }
        if (p..n).all(|j| e[(r, j)] == 0) {
            continue; // no pivot in this row
        }
        // Euclidean reduction across columns p..n until only the pivot
        // column is non-zero in row r.
        loop {
            // Move the smallest non-zero |entry| into the pivot column.
            let jmin = (p..n)
                .filter(|&j| e[(r, j)] != 0)
                .min_by_key(|&j| e[(r, j)].unsigned_abs())
                .expect("at least one non-zero entry");
            if jmin != p {
                e.swap_cols(p, jmin);
                u.swap_cols(p, jmin);
            }
            if e[(r, p)] < 0 {
                e.negate_col(p)?;
                u.negate_col(p)?;
            }
            let pivot = e[(r, p)];
            let mut clean = true;
            for j in (p + 1)..n {
                if e[(r, j)] != 0 {
                    let q = num::div_floor(e[(r, j)], pivot);
                    if q != 0 {
                        e.add_col_multiple(j, p, num::neg(q)?)?;
                        u.add_col_multiple(j, p, num::neg(q)?)?;
                    }
                    if e[(r, j)] != 0 {
                        clean = false;
                    }
                }
            }
            if clean {
                break;
            }
        }
        pivot_rows.push(r);
        p += 1;
    }

    Ok(Factorization {
        u,
        echelon: e,
        pivot_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_invariants(a: &Matrix) {
        let f = factorize(a).unwrap();
        // A * U == E
        assert_eq!(a.mul_mat(&f.u).unwrap(), f.echelon, "A*U == E for {a}");
        // Echelon shape: pivot k in (pivot_rows[k], k) positive, zeros right.
        for (k, &r) in f.pivot_rows.iter().enumerate() {
            assert!(f.echelon[(r, k)] > 0, "pivot positive");
            for j in (k + 1)..a.cols() {
                assert_eq!(f.echelon[(r, j)], 0, "zeros right of pivot");
            }
        }
        // Pivot rows strictly increase.
        assert!(f.pivot_rows.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn single_equation_gcd() {
        let a = Matrix::from_rows(&[vec![6, 10, 15]]);
        let f = factorize(&a).unwrap();
        assert_eq!(f.echelon[(0, 0)], 1); // gcd(6,10,15) = 1
        check_invariants(&a);
    }

    #[test]
    fn paper_example_i_equals_i_plus_10() {
        // i - i' = -10, i.e. coefficients [1, -1].
        let a = Matrix::from_rows(&[vec![1, -1]]);
        let f = factorize(&a).unwrap();
        assert_eq!(f.rank(), 1);
        assert_eq!(f.echelon[(0, 0)], 1);
        check_invariants(&a);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        let a = Matrix::zeros(2, 3);
        let f = factorize(&a).unwrap();
        assert_eq!(f.rank(), 0);
        assert_eq!(f.u, Matrix::identity(3));
    }

    #[test]
    fn full_rank_square() {
        let a = Matrix::from_rows(&[vec![2, 1], vec![1, 1]]);
        let f = factorize(&a).unwrap();
        assert_eq!(f.rank(), 2);
        check_invariants(&a);
    }

    #[test]
    fn rank_deficient_rows() {
        // Second row is a multiple of the first.
        let a = Matrix::from_rows(&[vec![1, 2, 3], vec![2, 4, 6]]);
        let f = factorize(&a).unwrap();
        assert_eq!(f.rank(), 1);
        check_invariants(&a);
    }

    #[test]
    fn wide_and_tall() {
        check_invariants(&Matrix::from_rows(&[vec![3, 5, 7, 9]]));
        check_invariants(&Matrix::from_rows(&[vec![2, 3], vec![5, 7], vec![11, 13]]));
    }

    #[test]
    fn negative_entries() {
        check_invariants(&Matrix::from_rows(&[vec![-4, 6], vec![8, -10]]));
    }
}
