//! Exact integer and rational linear algebra for data dependence analysis.
//!
//! This crate provides the numeric substrate for the cascaded exact
//! dependence tests of Maydan, Hennessy and Lam (PLDI 1991):
//!
//! - [`num`]: checked integer helpers (`gcd`, extended gcd, floor/ceiling
//!   division) over `i64`.
//! - [`Rational`]: an exact rational number used by the Fourier–Motzkin
//!   backup test.
//! - [`Matrix`]: a small dense integer matrix.
//! - [`factor`]: the unimodular × echelon factorization (`A · U = E`)
//!   computed by an extension of Gaussian elimination, the engine behind
//!   Banerjee's extended GCD test.
//! - [`diophantine`]: integral solution of linear systems `A x = b`,
//!   returning a particular solution plus a lattice basis for the free
//!   variables.
//!
//! All arithmetic is checked: operations that could overflow return
//! [`Error::Overflow`] instead of wrapping, so callers can fall back to a
//! conservative "assume dependent" answer.
//!
//! # Examples
//!
//! Solving `3x + 5y = 7` over the integers:
//!
//! ```
//! use dda_linalg::{Matrix, diophantine::solve};
//!
//! let a = Matrix::from_rows(&[vec![3, 5]]);
//! let sol = solve(&a, &[7]).expect("no overflow").expect("solvable");
//! let x = sol.particular();
//! assert_eq!(3 * x[0] + 5 * x[1], 7);
//! assert_eq!(sol.num_free(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod diophantine;
mod error;
pub mod factor;
mod matrix;
pub mod num;
mod rational;

pub use error::Error;
pub use matrix::Matrix;
pub use rational::Rational;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
