//! Exact integer and rational linear algebra for data dependence analysis.
//!
//! This crate provides the numeric substrate for the cascaded exact
//! dependence tests of Maydan, Hennessy and Lam (PLDI 1991):
//!
//! - [`num`]: checked integer helpers (`gcd`, extended gcd, floor/ceiling
//!   division) over `i64`.
//! - [`Rational`]: an exact rational number used by the Fourier–Motzkin
//!   backup test.
//! - [`Coeff`]: a tiered exact fraction — `i64` fast path promoting
//!   through `i128` to [`Rational`] only on overflow — used by the
//!   Fourier–Motzkin back-substitution hot path.
//! - [`SmallVec`]: inline small-vector storage sized for the dominant
//!   ≤3-variable / ≤6-column dependence systems, so row clones and
//!   matrix construction stop heap-allocating.
//! - [`Matrix`]: a small dense integer matrix (inline storage).
//! - [`factor`]: the unimodular × echelon factorization (`A · U = E`)
//!   computed by an extension of Gaussian elimination, the engine behind
//!   Banerjee's extended GCD test.
//! - [`diophantine`]: integral solution of linear systems `A x = b`,
//!   returning a particular solution plus a lattice basis for the free
//!   variables.
//!
//! All arithmetic is checked: operations that could overflow return
//! [`Error::Overflow`] instead of wrapping, so callers can fall back to a
//! conservative "assume dependent" answer.
//!
//! # Examples
//!
//! Solving `3x + 5y = 7` over the integers:
//!
//! ```
//! use dda_linalg::{Matrix, diophantine::solve};
//!
//! let a = Matrix::from_rows(&[vec![3, 5]]);
//! let sol = solve(&a, &[7]).expect("no overflow").expect("solvable");
//! let x = sol.particular();
//! assert_eq!(3 * x[0] + 5 * x[1], 7);
//! assert_eq!(sol.num_free(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coeff;
pub mod diophantine;
mod error;
pub mod factor;
mod matrix;
pub mod num;
mod rational;
mod smallvec;

pub use coeff::Coeff;
pub use error::Error;
pub use matrix::Matrix;
pub use rational::Rational;
pub use smallvec::SmallVec;

/// Inline-capacity row type for constraint coefficients: sized for the
/// dominant ≤6-column dependence systems (≤3 loop variables after the
/// extended-GCD reduction, doubled for the pairwise problems), so row
/// clones in the solver stages stay off the heap.
pub type CoeffVec = SmallVec<i64, 6>;

/// Convenience alias for results produced by this crate.
pub type Result<T> = std::result::Result<T, Error>;
