//! A small dense integer matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::{num, Error, Result, SmallVec};

/// Inline storage sized for the dominant tiny systems: a 3×6 equality
/// system, small lattice bases, and unimodular factors all fit without
/// touching the heap.
type MatrixData = SmallVec<i64, 24>;

/// A dense row-major matrix of `i64` values.
///
/// Dependence systems are tiny (a handful of rows and columns), so this
/// type favours clarity and checked arithmetic — and keeps entries in
/// inline [`SmallVec`] storage so the common case never allocates.
///
/// # Examples
///
/// ```
/// use dda_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1, 2], vec![3, 4]]);
/// assert_eq!(m[(1, 0)], 3);
/// assert_eq!(m.mul_vec(&[1, 1])?, vec![3, 7]);
/// # Ok::<(), dda_linalg::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: MatrixData,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: MatrixData::from_elem(0, rows * cols),
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Matrix {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Creates a matrix from explicit rows.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length; see
    /// [`Matrix::try_from_rows`] for the fallible form.
    #[must_use]
    pub fn from_rows(rows: &[Vec<i64>]) -> Matrix {
        Matrix::try_from_rows(rows).expect("all rows must have the same length")
    }

    /// Creates a matrix from explicit rows, rejecting ragged input.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the rows do not all have the
    /// same length.
    ///
    /// # Examples
    ///
    /// ```
    /// use dda_linalg::Matrix;
    ///
    /// let m = Matrix::try_from_rows(&[[1, 2], [3, 4]])?;
    /// assert_eq!(m[(1, 1)], 4);
    /// assert!(Matrix::try_from_rows(&[vec![1], vec![2, 3]]).is_err());
    /// # Ok::<(), dda_linalg::Error>(())
    /// ```
    pub fn try_from_rows<R: AsRef<[i64]>>(rows: &[R]) -> Result<Matrix> {
        let ncols = rows.first().map_or(0, |r| r.as_ref().len());
        let mut data = MatrixData::new();
        for r in rows {
            let r = r.as_ref();
            if r.len() != ncols {
                return Err(Error::ShapeMismatch {
                    expected: format!("rows of len {ncols}"),
                    found: format!("a row of len {}", r.len()),
                });
            }
            data.extend(r.iter().copied());
        }
        Ok(Matrix {
            rows: rows.len(),
            cols: ncols,
            data,
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[i64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` collected into a vector.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec<i64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Swaps columns `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        assert!(a < self.cols && b < self.cols, "column index out of range");
        for r in 0..self.rows {
            self.data.swap(r * self.cols + a, r * self.cols + b);
        }
    }

    /// Negates column `c` in place.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] when an entry is `i64::MIN`.
    pub fn negate_col(&mut self, c: usize) -> Result<()> {
        for r in 0..self.rows {
            self[(r, c)] = num::neg(self[(r, c)])?;
        }
        Ok(())
    }

    /// Adds `factor * column a` to column `b` in place.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] on overflow.
    pub fn add_col_multiple(&mut self, b: usize, a: usize, factor: i64) -> Result<()> {
        for r in 0..self.rows {
            let delta = num::mul(self[(r, a)], factor)?;
            self[(r, b)] = num::add(self[(r, b)], delta)?;
        }
        Ok(())
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if `v.len() != self.cols()` and
    /// [`Error::Overflow`] on overflow.
    pub fn mul_vec(&self, v: &[i64]) -> Result<Vec<i64>> {
        if v.len() != self.cols {
            return Err(Error::ShapeMismatch {
                expected: format!("vector of len {}", self.cols),
                found: format!("len {}", v.len()),
            });
        }
        (0..self.rows).map(|r| num::dot(self.row(r), v)).collect()
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ShapeMismatch`] if the inner dimensions differ and
    /// [`Error::Overflow`] on overflow.
    pub fn mul_mat(&self, rhs: &Matrix) -> Result<Matrix> {
        if self.cols != rhs.rows {
            return Err(Error::ShapeMismatch {
                expected: format!("{} rows", self.cols),
                found: format!("{} rows", rhs.rows),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for r in 0..self.rows {
            for c in 0..rhs.cols {
                let mut acc = 0i64;
                for k in 0..self.cols {
                    acc = num::add(acc, num::mul(self[(r, k)], rhs[(k, c)])?)?;
                }
                out[(r, c)] = acc;
            }
        }
        Ok(out)
    }

    /// Whether every entry is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = i64;
    fn index(&self, (r, c): (usize, usize)) -> &i64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut i64 {
        assert!(r < self.rows && c < self.cols, "matrix index out of range");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m[(0, 2)], 3);
        assert_eq!(m.row(1), &[4, 5, 6]);
        assert_eq!(m.col(1), vec![2, 5]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[vec![1], vec![2, 3]]);
    }

    #[test]
    fn try_from_rows_rejects_ragged() {
        assert!(matches!(
            Matrix::try_from_rows(&[vec![1], vec![2, 3]]),
            Err(Error::ShapeMismatch { .. })
        ));
        assert!(matches!(
            Matrix::try_from_rows(&[vec![], vec![1]]),
            Err(Error::ShapeMismatch { .. })
        ));
        let m = Matrix::try_from_rows(&[[1i64, 2], [3, 4]]).unwrap();
        assert_eq!((m.rows(), m.cols()), (2, 2));
        assert_eq!(m.row(1), &[3, 4]);
        let empty = Matrix::try_from_rows::<Vec<i64>>(&[]).unwrap();
        assert_eq!((empty.rows(), empty.cols()), (0, 0));
    }

    #[test]
    fn identity_multiplication() {
        let m = Matrix::from_rows(&[vec![1, 2], vec![3, 4]]);
        let i = Matrix::identity(2);
        assert_eq!(m.mul_mat(&i).unwrap(), m);
        assert_eq!(i.mul_mat(&m).unwrap(), m);
    }

    #[test]
    fn column_operations() {
        let mut m = Matrix::from_rows(&[vec![1, 2], vec![3, 4]]);
        m.swap_cols(0, 1);
        assert_eq!(m.row(0), &[2, 1]);
        m.negate_col(0).unwrap();
        assert_eq!(m.row(0), &[-2, 1]);
        m.add_col_multiple(1, 0, 2).unwrap();
        assert_eq!(m.row(0), &[-2, -3]);
        assert_eq!(m.row(1), &[-4, -5]);
    }

    #[test]
    fn mul_vec_shapes() {
        let m = Matrix::from_rows(&[vec![1, 0, 2]]);
        assert_eq!(m.mul_vec(&[5, 7, 1]).unwrap(), vec![7]);
        assert!(m.mul_vec(&[1, 2]).is_err());
    }

    #[test]
    fn zero_sized() {
        let m = Matrix::zeros(0, 3);
        assert!(m.is_zero());
        assert_eq!(m.mul_vec(&[1, 2, 3]).unwrap(), Vec::<i64>::new());
    }
}
