//! Checked integer helpers: gcd, extended gcd, floor/ceiling division.
//!
//! Everything here operates on `i64` and either cannot overflow (gcd-family
//! functions, which only shrink magnitudes) or returns [`Error::Overflow`]
//! through the [`crate::Result`] alias.

use crate::{Error, Result};

/// Greatest common divisor of two integers, always non-negative.
///
/// `gcd(0, 0)` is defined as `0`.
///
/// # Examples
///
/// ```
/// use dda_linalg::num::gcd;
/// assert_eq!(gcd(12, -18), 6);
/// assert_eq!(gcd(0, 7), 7);
/// assert_eq!(gcd(0, 0), 0);
/// ```
#[must_use]
pub fn gcd(a: i64, b: i64) -> i64 {
    // unsigned_abs avoids overflow on i64::MIN.
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    // A gcd of two i64 magnitudes fits in i64 unless both inputs were
    // i64::MIN; saturate in that pathological case.
    i64::try_from(a).unwrap_or(i64::MAX)
}

/// Greatest common divisor of a slice, always non-negative.
///
/// Returns `0` for an empty slice or an all-zero slice.
///
/// # Examples
///
/// ```
/// use dda_linalg::num::gcd_slice;
/// assert_eq!(gcd_slice(&[4, -6, 10]), 2);
/// assert_eq!(gcd_slice(&[]), 0);
/// ```
#[must_use]
pub fn gcd_slice(values: &[i64]) -> i64 {
    values.iter().fold(0, |g, &v| gcd(g, v))
}

/// Least common multiple, always non-negative.
///
/// # Errors
///
/// Returns [`Error::Overflow`] if the result does not fit in `i64`.
///
/// # Examples
///
/// ```
/// use dda_linalg::num::lcm;
/// assert_eq!(lcm(4, 6).unwrap(), 12);
/// assert_eq!(lcm(0, 5).unwrap(), 0);
/// ```
pub fn lcm(a: i64, b: i64) -> Result<i64> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    let g = gcd(a, b);
    (a / g).checked_mul(b).map(i64::abs).ok_or(Error::Overflow)
}

/// Result of the extended Euclidean algorithm: `a*x + b*y == g` with
/// `g == gcd(a, b) >= 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtendedGcd {
    /// The (non-negative) greatest common divisor.
    pub g: i64,
    /// Bézout coefficient for the first argument.
    pub x: i64,
    /// Bézout coefficient for the second argument.
    pub y: i64,
}

/// Extended Euclidean algorithm.
///
/// Returns `ExtendedGcd { g, x, y }` such that `a*x + b*y == g` and
/// `g == gcd(a, b)`.
///
/// # Examples
///
/// ```
/// use dda_linalg::num::extended_gcd;
/// let e = extended_gcd(240, 46);
/// assert_eq!(e.g, 2);
/// assert_eq!(240 * e.x + 46 * e.y, 2);
/// ```
#[must_use]
pub fn extended_gcd(a: i64, b: i64) -> ExtendedGcd {
    // Classic iterative algorithm; the Bézout coefficients are bounded by
    // max(|a|, |b|), so no overflow is possible for inputs > i64::MIN.
    let (mut old_r, mut r) = (a, b);
    let (mut old_x, mut x) = (1i64, 0i64);
    let (mut old_y, mut y) = (0i64, 1i64);
    while r != 0 {
        let q = old_r / r;
        (old_r, r) = (r, old_r - q * r);
        (old_x, x) = (x, old_x - q * x);
        (old_y, y) = (y, old_y - q * y);
    }
    if old_r < 0 {
        old_r = -old_r;
        old_x = -old_x;
        old_y = -old_y;
    }
    ExtendedGcd {
        g: old_r,
        x: old_x,
        y: old_y,
    }
}

/// Floor division: the largest integer `q` with `q * b <= a`.
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// use dda_linalg::num::div_floor;
/// assert_eq!(div_floor(7, 2), 3);
/// assert_eq!(div_floor(-7, 2), -4);
/// assert_eq!(div_floor(7, -2), -4);
/// ```
#[must_use]
pub fn div_floor(a: i64, b: i64) -> i64 {
    let q = a / b;
    let r = a % b;
    if r != 0 && ((r < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

/// Ceiling division: the smallest integer `q` with `q * b >= a` (for
/// `b > 0`).
///
/// # Panics
///
/// Panics if `b == 0`.
///
/// # Examples
///
/// ```
/// use dda_linalg::num::div_ceil;
/// assert_eq!(div_ceil(7, 2), 4);
/// assert_eq!(div_ceil(-7, 2), -3);
/// ```
#[must_use]
pub fn div_ceil(a: i64, b: i64) -> i64 {
    let q = a / b;
    let r = a % b;
    if r != 0 && ((r < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// Checked floor division: `Some(div_floor(a, b))` unless the division
/// itself is undefined or overflows.
///
/// Returns `None` when `b == 0` or when `a == i64::MIN && b == -1` (the
/// one quotient that does not fit in `i64`).
///
/// # Examples
///
/// ```
/// use dda_linalg::num::checked_div_floor;
/// assert_eq!(checked_div_floor(-7, 2), Some(-4));
/// assert_eq!(checked_div_floor(7, 0), None);
/// assert_eq!(checked_div_floor(i64::MIN, -1), None);
/// ```
#[must_use]
pub fn checked_div_floor(a: i64, b: i64) -> Option<i64> {
    if b == 0 || (a == i64::MIN && b == -1) {
        None
    } else {
        Some(div_floor(a, b))
    }
}

/// Checked ceiling division: `Some(div_ceil(a, b))` unless the division
/// itself is undefined or overflows.
///
/// Returns `None` when `b == 0` or when `a == i64::MIN && b == -1`.
///
/// # Examples
///
/// ```
/// use dda_linalg::num::checked_div_ceil;
/// assert_eq!(checked_div_ceil(-7, 2), Some(-3));
/// assert_eq!(checked_div_ceil(7, 0), None);
/// assert_eq!(checked_div_ceil(i64::MIN, -1), None);
/// ```
#[must_use]
pub fn checked_div_ceil(a: i64, b: i64) -> Option<i64> {
    if b == 0 || (a == i64::MIN && b == -1) {
        None
    } else {
        Some(div_ceil(a, b))
    }
}

/// Checked addition lifted to [`crate::Result`].
///
/// # Errors
///
/// Returns [`Error::Overflow`] on overflow.
pub fn add(a: i64, b: i64) -> Result<i64> {
    a.checked_add(b).ok_or(Error::Overflow)
}

/// Checked subtraction lifted to [`crate::Result`].
///
/// # Errors
///
/// Returns [`Error::Overflow`] on overflow.
pub fn sub(a: i64, b: i64) -> Result<i64> {
    a.checked_sub(b).ok_or(Error::Overflow)
}

/// Checked multiplication lifted to [`crate::Result`].
///
/// # Errors
///
/// Returns [`Error::Overflow`] on overflow.
pub fn mul(a: i64, b: i64) -> Result<i64> {
    a.checked_mul(b).ok_or(Error::Overflow)
}

/// Checked negation lifted to [`crate::Result`].
///
/// # Errors
///
/// Returns [`Error::Overflow`] when negating `i64::MIN`.
pub fn neg(a: i64) -> Result<i64> {
    a.checked_neg().ok_or(Error::Overflow)
}

/// Checked dot product of two equal-length slices.
///
/// # Errors
///
/// Returns [`Error::Overflow`] on overflow and [`Error::ShapeMismatch`] if
/// the slices have different lengths.
pub fn dot(a: &[i64], b: &[i64]) -> Result<i64> {
    if a.len() != b.len() {
        return Err(Error::ShapeMismatch {
            expected: format!("len {}", a.len()),
            found: format!("len {}", b.len()),
        });
    }
    let mut acc = 0i64;
    for (&x, &y) in a.iter().zip(b) {
        acc = add(acc, mul(x, y)?)?;
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(1, 1), 1);
        assert_eq!(gcd(-4, 6), 2);
        assert_eq!(gcd(6, -4), 2);
        assert_eq!(gcd(i64::MIN, i64::MIN), i64::MAX); // saturated pathological case
        assert_eq!(gcd(i64::MIN, 1), 1);
    }

    #[test]
    fn gcd_slice_basic() {
        assert_eq!(gcd_slice(&[9, 6, 3]), 3);
        assert_eq!(gcd_slice(&[0, 0]), 0);
        assert_eq!(gcd_slice(&[5]), 5);
        assert_eq!(gcd_slice(&[-5]), 5);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6).unwrap(), 12);
        assert_eq!(lcm(-4, 6).unwrap(), 12);
        assert_eq!(lcm(0, 0).unwrap(), 0);
        assert!(lcm(i64::MAX, i64::MAX - 1).is_err());
    }

    #[test]
    fn extended_gcd_bezout() {
        for (a, b) in [(240, 46), (-240, 46), (0, 5), (5, 0), (0, 0), (7, 7)] {
            let e = extended_gcd(a, b);
            assert_eq!(e.g, gcd(a, b), "gcd for {a},{b}");
            assert_eq!(a * e.x + b * e.y, e.g, "bezout for {a},{b}");
        }
    }

    #[test]
    fn floor_ceil_division() {
        for a in -20..=20i64 {
            for b in [-7, -3, -1, 1, 2, 5] {
                let expect_floor = (f64::from(a as i32) / f64::from(b as i32)).floor() as i64;
                let expect_ceil = (f64::from(a as i32) / f64::from(b as i32)).ceil() as i64;
                assert_eq!(div_floor(a, b), expect_floor, "floor {a}/{b}");
                assert_eq!(div_ceil(a, b), expect_ceil, "ceil {a}/{b}");
            }
        }
    }

    #[test]
    fn checked_division_edge_cases() {
        assert_eq!(checked_div_floor(7, 2), Some(3));
        assert_eq!(checked_div_ceil(7, 2), Some(4));
        assert_eq!(checked_div_floor(i64::MIN, -1), None);
        assert_eq!(checked_div_ceil(i64::MIN, -1), None);
        assert_eq!(checked_div_floor(i64::MIN, 1), Some(i64::MIN));
        assert_eq!(checked_div_floor(3, 0), None);
        assert_eq!(checked_div_ceil(3, 0), None);
    }

    #[test]
    fn dot_checks_shape_and_overflow() {
        assert_eq!(dot(&[1, 2], &[3, 4]).unwrap(), 11);
        assert!(matches!(
            dot(&[1], &[1, 2]),
            Err(Error::ShapeMismatch { .. })
        ));
        assert_eq!(dot(&[i64::MAX, 1], &[2, 0]), Err(Error::Overflow));
    }
}
