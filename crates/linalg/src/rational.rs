//! Exact rational arithmetic for the Fourier–Motzkin elimination.

use std::cmp::Ordering;
use std::fmt;

use crate::{Error, Result};

/// An exact rational number with an `i128` numerator and denominator.
///
/// Invariants: the denominator is always positive and the fraction is always
/// in lowest terms. Arithmetic is checked; operations that would overflow
/// `i128` return [`Error::Overflow`] (the `std::ops` operators panic instead,
/// see the per-method docs).
///
/// # Examples
///
/// ```
/// use dda_linalg::Rational;
///
/// let a = Rational::new(1, 2)?;
/// let b = Rational::new(1, 3)?;
/// assert_eq!((a + b), Rational::new(5, 6)?);
/// assert_eq!(a.floor(), 0);
/// assert_eq!(a.ceil(), 1);
/// # Ok::<(), dda_linalg::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd128(a: i128, b: i128) -> i128 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a as i128
}

impl Rational {
    /// The rational number zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates a rational `num / den` in lowest terms.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DivisionByZero`] when `den == 0`.
    pub fn new(num: i128, den: i128) -> Result<Rational> {
        if den == 0 {
            return Err(Error::DivisionByZero);
        }
        let g = gcd128(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Ok(Rational { num, den })
    }

    /// Creates a rational from an integer.
    #[must_use]
    pub fn from_int(v: i64) -> Rational {
        Rational {
            num: i128::from(v),
            den: 1,
        }
    }

    /// The numerator (sign-carrying).
    #[must_use]
    pub fn numer(&self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    #[must_use]
    pub fn denom(&self) -> i128 {
        self.den
    }

    /// Whether this rational is an integer.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// The largest integer `<= self`.
    #[must_use]
    pub fn floor(&self) -> i128 {
        self.num.div_euclid(self.den)
    }

    /// The smallest integer `>= self`.
    #[must_use]
    pub fn ceil(&self) -> i128 {
        -(-self.num).div_euclid(self.den)
    }

    /// Checked addition.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] if an intermediate product overflows.
    pub fn try_add(&self, rhs: &Rational) -> Result<Rational> {
        let n1 = self.num.checked_mul(rhs.den).ok_or(Error::Overflow)?;
        let n2 = rhs.num.checked_mul(self.den).ok_or(Error::Overflow)?;
        let num = n1.checked_add(n2).ok_or(Error::Overflow)?;
        let den = self.den.checked_mul(rhs.den).ok_or(Error::Overflow)?;
        Rational::new(num, den)
    }

    /// Checked subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] if an intermediate product overflows.
    pub fn try_sub(&self, rhs: &Rational) -> Result<Rational> {
        self.try_add(&rhs.try_neg()?)
    }

    /// Checked multiplication.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] if an intermediate product overflows.
    pub fn try_mul(&self, rhs: &Rational) -> Result<Rational> {
        let num = self.num.checked_mul(rhs.num).ok_or(Error::Overflow)?;
        let den = self.den.checked_mul(rhs.den).ok_or(Error::Overflow)?;
        Rational::new(num, den)
    }

    /// Checked division.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DivisionByZero`] if `rhs` is zero, or
    /// [`Error::Overflow`] on overflow.
    pub fn try_div(&self, rhs: &Rational) -> Result<Rational> {
        if rhs.num == 0 {
            return Err(Error::DivisionByZero);
        }
        let num = self.num.checked_mul(rhs.den).ok_or(Error::Overflow)?;
        let den = self.den.checked_mul(rhs.num).ok_or(Error::Overflow)?;
        Rational::new(num, den)
    }

    /// Checked negation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Overflow`] when negating `i128::MIN`.
    pub fn try_neg(&self) -> Result<Rational> {
        Ok(Rational {
            num: self.num.checked_neg().ok_or(Error::Overflow)?,
            den: self.den,
        })
    }

    /// The integer nearest to `self`, rounding halves up.
    ///
    /// Used by the Fourier–Motzkin back-substitution heuristic, which picks
    /// the integer at the middle of the allowed range.
    #[must_use]
    pub fn round_nearest(&self) -> i128 {
        // floor(self + 1/2)
        let doubled = Rational {
            num: self.num * 2 + self.den,
            den: self.den * 2,
        };
        doubled.floor()
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Compare via cross-multiplication; denominators are positive.
        // Extreme components can overflow the i128 products (a latent
        // wrap/panic in the old unchecked code); fall back to the exact
        // continued-fraction comparison when they do.
        match (
            self.num.checked_mul(other.den),
            other.num.checked_mul(self.den),
        ) {
            (Some(lhs), Some(rhs)) => lhs.cmp(&rhs),
            _ => crate::coeff::cmp_frac(self.num, self.den, other.num, other.den),
        }
    }
}

impl std::ops::Add for Rational {
    type Output = Rational;
    /// # Panics
    ///
    /// Panics on `i128` overflow; use [`Rational::try_add`] for a checked
    /// variant.
    fn add(self, rhs: Rational) -> Rational {
        self.try_add(&rhs).expect("rational addition overflowed")
    }
}

impl std::ops::Sub for Rational {
    type Output = Rational;
    /// # Panics
    ///
    /// Panics on `i128` overflow; use [`Rational::try_sub`] for a checked
    /// variant.
    fn sub(self, rhs: Rational) -> Rational {
        self.try_sub(&rhs).expect("rational subtraction overflowed")
    }
}

impl std::ops::Mul for Rational {
    type Output = Rational;
    /// # Panics
    ///
    /// Panics on `i128` overflow; use [`Rational::try_mul`] for a checked
    /// variant.
    fn mul(self, rhs: Rational) -> Rational {
        self.try_mul(&rhs)
            .expect("rational multiplication overflowed")
    }
}

impl std::ops::Neg for Rational {
    type Output = Rational;
    /// # Panics
    ///
    /// Panics when negating the most negative representable rational.
    fn neg(self) -> Rational {
        self.try_neg().expect("rational negation overflowed")
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Rational {
        Rational::from_int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        let r = Rational::new(4, -6).unwrap();
        assert_eq!(r.numer(), -2);
        assert_eq!(r.denom(), 3);
        assert_eq!(Rational::new(0, -5).unwrap(), Rational::ZERO);
        assert!(Rational::new(1, 0).is_err());
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 2).unwrap();
        let b = Rational::new(1, 3).unwrap();
        assert_eq!(a + b, Rational::new(5, 6).unwrap());
        assert_eq!(a - b, Rational::new(1, 6).unwrap());
        assert_eq!(a * b, Rational::new(1, 6).unwrap());
        assert_eq!(a.try_div(&b).unwrap(), Rational::new(3, 2).unwrap());
        assert!(a.try_div(&Rational::ZERO).is_err());
    }

    #[test]
    fn floor_ceil_round() {
        let r = Rational::new(-7, 2).unwrap();
        assert_eq!(r.floor(), -4);
        assert_eq!(r.ceil(), -3);
        assert_eq!(Rational::new(7, 2).unwrap().floor(), 3);
        assert_eq!(Rational::new(7, 2).unwrap().ceil(), 4);
        assert_eq!(Rational::new(5, 2).unwrap().round_nearest(), 3); // halves round up
        assert_eq!(Rational::new(-5, 2).unwrap().round_nearest(), -2);
        assert_eq!(Rational::new(1, 3).unwrap().round_nearest(), 0);
        assert_eq!(Rational::new(2, 3).unwrap().round_nearest(), 1);
    }

    #[test]
    fn ordering() {
        let a = Rational::new(1, 3).unwrap();
        let b = Rational::new(1, 2).unwrap();
        assert!(a < b);
        assert!(Rational::new(-1, 2).unwrap() < Rational::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 1).unwrap().to_string(), "3");
        assert_eq!(Rational::new(-1, 2).unwrap().to_string(), "-1/2");
    }
}
