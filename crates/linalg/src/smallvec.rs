//! Inline small-vector storage for the dominant tiny systems.
//!
//! Dependence systems are overwhelmingly ≤3 variables / ≤6 columns (the
//! paper's own premise: the systems are tiny, which is why exact analysis
//! is affordable). A heap `Vec` per row means every constraint clone,
//! every Fourier–Motzkin combination, and every per-stage row rebuild
//! pays an allocator round-trip. [`SmallVec`] stores up to `N` elements
//! inline and spills to a heap `Vec` only past that, so the common case
//! never allocates. Hand-rolled because the build is offline (no external
//! deps): restricting `T: Copy + Default` keeps it safe — no `unsafe`,
//! no `MaybeUninit`, no drop bookkeeping.
//!
//! Equality, ordering, and hashing all have **slice semantics** (and
//! [`Hash`] matches `Vec`'s, length-prefixed), so types that previously
//! derived them over a `Vec` field keep identical behavior after
//! swapping in a `SmallVec`.

#![warn(clippy::arithmetic_side_effects)]

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// A vector of `Copy` elements with inline storage for up to `N` of them.
///
/// # Examples
///
/// ```
/// use dda_linalg::SmallVec;
///
/// let mut v: SmallVec<i64, 4> = SmallVec::new();
/// v.push(3);
/// v.push(5);
/// assert_eq!(&v[..], &[3, 5]);
/// assert!(!v.spilled());
/// for x in 0..10 {
///     v.push(x);
/// }
/// assert!(v.spilled());
/// assert_eq!(v.len(), 12);
/// ```
#[derive(Clone)]
pub struct SmallVec<T: Copy + Default, const N: usize> {
    repr: Repr<T, N>,
}

#[derive(Clone)]
enum Repr<T: Copy, const N: usize> {
    Inline { len: usize, buf: [T; N] },
    Heap(Vec<T>),
}

impl<T: Copy + Default, const N: usize> SmallVec<T, N> {
    /// Creates an empty vector (no allocation).
    #[must_use]
    pub fn new() -> SmallVec<T, N> {
        SmallVec {
            repr: Repr::Inline {
                len: 0,
                buf: [T::default(); N],
            },
        }
    }

    /// The inline capacity `N`.
    #[must_use]
    pub const fn inline_capacity() -> usize {
        N
    }

    /// Creates a vector of `n` copies of `value`, inline when `n <= N`.
    #[must_use]
    pub fn from_elem(value: T, n: usize) -> SmallVec<T, N> {
        if n <= N {
            let mut buf = [T::default(); N];
            for slot in buf.iter_mut().take(n) {
                *slot = value;
            }
            SmallVec {
                repr: Repr::Inline { len: n, buf },
            }
        } else {
            SmallVec {
                repr: Repr::Heap(vec![value; n]),
            }
        }
    }

    /// Copies a slice, inline when it fits.
    #[must_use]
    pub fn from_slice(values: &[T]) -> SmallVec<T, N> {
        if values.len() <= N {
            let mut buf = [T::default(); N];
            buf[..values.len()].copy_from_slice(values);
            SmallVec {
                repr: Repr::Inline {
                    len: values.len(),
                    buf,
                },
            }
        } else {
            SmallVec {
                repr: Repr::Heap(values.to_vec()),
            }
        }
    }

    /// Whether the contents have spilled to the heap.
    #[must_use]
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// Appends an element, spilling to the heap when the inline buffer is
    /// full.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if *len < N {
                    buf[*len] = value;
                    *len = len.wrapping_add(1);
                } else {
                    let mut v = Vec::with_capacity(N.saturating_mul(2).max(4));
                    v.extend_from_slice(&buf[..N]);
                    v.push(value);
                    self.repr = Repr::Heap(v);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Removes and returns the element at `index`, replacing it with the
    /// last element (`O(1)`, order not preserved).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn swap_remove(&mut self, index: usize) -> T {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                assert!(index < *len, "swap_remove index out of bounds");
                let out = buf[index];
                *len = len.wrapping_sub(1);
                buf[index] = buf[*len];
                out
            }
            Repr::Heap(v) => v.swap_remove(index),
        }
    }

    /// Shortens the vector to `len` elements (no-op when already shorter).
    pub fn truncate(&mut self, new_len: usize) {
        match &mut self.repr {
            Repr::Inline { len, .. } => *len = (*len).min(new_len),
            Repr::Heap(v) => v.truncate(new_len),
        }
    }

    /// Removes all elements, keeping the storage.
    pub fn clear(&mut self) {
        self.truncate(0);
    }

    /// The contents as a slice.
    #[must_use]
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len],
            Repr::Heap(v) => v,
        }
    }

    /// The contents as a mutable slice.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..*len],
            Repr::Heap(v) => v,
        }
    }
}

impl<T: Copy + Default, const N: usize> Default for SmallVec<T, N> {
    fn default() -> SmallVec<T, N> {
        SmallVec::new()
    }
}

impl<T: Copy + Default, const N: usize> Deref for SmallVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default, const N: usize> DerefMut for SmallVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Copy + Default + fmt::Debug, const N: usize> fmt::Debug for SmallVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.as_slice().fmt(f)
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for SmallVec<T, N> {
    fn eq(&self, other: &SmallVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Copy + Default + Eq, const N: usize> Eq for SmallVec<T, N> {}

impl<T: Copy + Default + PartialOrd, const N: usize> PartialOrd for SmallVec<T, N> {
    fn partial_cmp(&self, other: &SmallVec<T, N>) -> Option<std::cmp::Ordering> {
        self.as_slice().partial_cmp(other.as_slice())
    }
}

impl<T: Copy + Default + Ord, const N: usize> Ord for SmallVec<T, N> {
    fn cmp(&self, other: &SmallVec<T, N>) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl<T: Copy + Default + Hash, const N: usize> Hash for SmallVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Same as Vec / slice: length prefix then elements, so a struct
        // that swaps a Vec field for a SmallVec keeps its derived hash.
        self.as_slice().hash(state);
    }
}

impl<T: Copy + Default, const N: usize> From<Vec<T>> for SmallVec<T, N> {
    fn from(v: Vec<T>) -> SmallVec<T, N> {
        if v.len() > N {
            SmallVec {
                repr: Repr::Heap(v),
            }
        } else {
            SmallVec::from_slice(&v)
        }
    }
}

impl<T: Copy + Default, const N: usize> From<&[T]> for SmallVec<T, N> {
    fn from(v: &[T]) -> SmallVec<T, N> {
        SmallVec::from_slice(v)
    }
}

impl<T: Copy + Default, const N: usize, const M: usize> From<[T; M]> for SmallVec<T, N> {
    fn from(v: [T; M]) -> SmallVec<T, N> {
        SmallVec::from_slice(&v)
    }
}

impl<T: Copy + Default, const N: usize> FromIterator<T> for SmallVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> SmallVec<T, N> {
        let mut out = SmallVec::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

impl<T: Copy + Default, const N: usize> Extend<T> for SmallVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a SmallVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a mut SmallVec<T, N> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_mut_slice().iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<H: Hash>(v: &H) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn inline_until_capacity_then_spills() {
        let mut v: SmallVec<i64, 3> = SmallVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.push(3);
        assert!(!v.spilled());
        v.push(4);
        assert!(v.spilled());
        assert_eq!(&v[..], &[1, 2, 3, 4]);
    }

    #[test]
    fn from_vec_keeps_large_allocation() {
        let v: SmallVec<i64, 2> = vec![1, 2, 3].into();
        assert!(v.spilled());
        let v: SmallVec<i64, 4> = vec![1, 2, 3].into();
        assert!(!v.spilled());
        assert_eq!(&v[..], &[1, 2, 3]);
    }

    #[test]
    fn hash_matches_vec() {
        let vecs = [vec![], vec![1i64], vec![1, -2, 3], vec![0; 10]];
        for v in vecs {
            let s: SmallVec<i64, 4> = v.clone().into();
            assert_eq!(hash_of(&s), hash_of(&v), "{v:?}");
        }
    }

    #[test]
    fn slice_ops_and_mutation() {
        let mut v: SmallVec<i64, 4> = SmallVec::from_elem(7, 3);
        v[1] = 9;
        for x in &mut v {
            *x += 1;
        }
        assert_eq!(v.iter().copied().collect::<Vec<_>>(), vec![8, 10, 8]);
        assert_eq!(v.swap_remove(0), 8);
        assert_eq!(&v[..], &[8, 10]);
        v.truncate(1);
        assert_eq!(&v[..], &[8]);
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn swap_remove_on_heap() {
        let mut v: SmallVec<i64, 2> = vec![1, 2, 3, 4].into();
        assert_eq!(v.swap_remove(0), 1);
        assert_eq!(&v[..], &[4, 2, 3]);
    }

    #[test]
    fn eq_and_ord_have_slice_semantics() {
        let a: SmallVec<i64, 2> = vec![1, 2, 3].into(); // heap
        let b: SmallVec<i64, 8> = vec![1, 2, 3].into(); // inline
        assert_eq!(a.as_slice(), b.as_slice());
        let c: SmallVec<i64, 2> = vec![1, 2, 4].into();
        assert!(a.as_slice() < c.as_slice());
    }

    #[test]
    fn collect_and_extend() {
        let v: SmallVec<i64, 4> = (0..3).collect();
        assert_eq!(&v[..], &[0, 1, 2]);
        let mut v: SmallVec<i64, 2> = SmallVec::new();
        v.extend(0..5);
        assert_eq!(v.len(), 5);
        assert!(v.spilled());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn swap_remove_out_of_bounds_panics() {
        let mut v: SmallVec<i64, 2> = SmallVec::from_elem(1, 1);
        let _ = v.swap_remove(1);
    }
}
