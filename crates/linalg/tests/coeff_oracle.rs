//! Differential oracle tests for the tiered [`Coeff`] arithmetic.
//!
//! The solver core replaced rational-first arithmetic with a tiered
//! representation (`i64` components → `i128` components → normalized
//! [`Rational`]). These tests force every promotion and check, against
//! two independent oracles, that the tiers never change a value:
//!
//! - a hand-rolled 256-bit signed multiply (`wide_mul`) that compares
//!   fractions by full-width cross-multiplication, with no shared code
//!   (and no shared overflow ceiling) with the implementation under test;
//! - the pre-refactor [`Rational`] arithmetic itself, which must agree
//!   bit-for-bit wherever it is defined, including *where it fails*: the
//!   tiered path must overflow exactly when rational-first did.

use std::cmp::Ordering;

use dda_linalg::{Coeff, Rational};
use proptest::prelude::*;

/// Sign (−1, 0, +1) and 256-bit magnitude of an `i128 × i128` product.
/// Schoolbook limb multiplication — an oracle independent of the
/// checked/continued-fraction machinery under test.
fn wide_mul(a: i128, b: i128) -> (i8, u128, u128) {
    const MASK: u128 = (1u128 << 64) - 1;
    let (ua, ub) = (a.unsigned_abs(), b.unsigned_abs());
    if ua == 0 || ub == 0 {
        return (0, 0, 0);
    }
    let sign = if (a < 0) != (b < 0) { -1 } else { 1 };
    let (a0, a1) = (ua & MASK, ua >> 64);
    let (b0, b1) = (ub & MASK, ub >> 64);
    let ll = a0 * b0;
    let lh = a0 * b1;
    let hl = a1 * b0;
    let mid = (ll >> 64) + (lh & MASK) + (hl & MASK);
    let lo = (ll & MASK) | ((mid & MASK) << 64);
    let hi = a1 * b1 + (lh >> 64) + (hl >> 64) + (mid >> 64);
    (sign, hi, lo)
}

/// Exact comparison of `n1/d1` vs `n2/d2` (`d1, d2 > 0`) by full-width
/// cross-multiplication.
fn cmp_ratio(n1: i128, d1: i128, n2: i128, d2: i128) -> Ordering {
    assert!(d1 > 0 && d2 > 0);
    let (s1, h1, l1) = wide_mul(n1, d2);
    let (s2, h2, l2) = wide_mul(n2, d1);
    s1.cmp(&s2).then_with(|| match s1 {
        1 => (h1, l1).cmp(&(h2, l2)),
        -1 => (h2, l2).cmp(&(h1, l1)),
        _ => Ordering::Equal,
    })
}

/// Asserts `c` holds exactly the value `n/d`.
fn assert_value(c: &Coeff, n: i128, d: i128, ctx: &str) {
    let (cn, cd) = c.parts();
    assert_eq!(
        cmp_ratio(cn, cd, n, d),
        Ordering::Equal,
        "{ctx}: {cn}/{cd} != {n}/{d}"
    );
}

/// A component drawn from one of three magnitude bands, chosen so pairs
/// cover all tier transitions: products of two small bands stay `Small`,
/// small × large and large × large need `Wide`, and huge × huge
/// overflows `i128`, forcing the `Rat` tier.
fn arb_component() -> impl Strategy<Value = i128> {
    (
        0u8..7,
        -1_000i128..=1_000,
        (i64::MAX as i128 / 2)..=(i64::MAX as i128),
        (1i128 << 90)..(1i128 << 100),
    )
        .prop_map(|(band, small, large, huge)| match band {
            0..=2 => small,
            3 => large,
            4 => -large,
            5 => huge,
            _ => -huge,
        })
}

/// A positive denominator from the same bands.
fn arb_den() -> impl Strategy<Value = i128> {
    arb_component().prop_map(|v| if v == 0 { 1 } else { v.abs() })
}

/// `(num, den)` pairs plus their tiered and rational forms.
fn arb_fraction() -> impl Strategy<Value = (i128, i128)> {
    (arb_component(), arb_den())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4000))]

    /// The 256-bit oracle itself agrees with native i128 multiplication
    /// wherever the product fits.
    #[test]
    fn wide_mul_matches_i128(a in -(1i128 << 62)..(1i128 << 62),
                             b in -(1i128 << 62)..(1i128 << 62)) {
        let (s, hi, lo) = wide_mul(a, b);
        prop_assert_eq!(hi, 0);
        let expect = a * b;
        prop_assert_eq!(i128::from(s).signum(), expect.signum());
        prop_assert_eq!(lo, expect.unsigned_abs());
    }

    /// Construction keeps the exact value in every tier, and floor /
    /// ceil / is_integer agree with the rational-first implementation.
    #[test]
    fn construction_exact_in_every_tier((n, d) in arb_fraction()) {
        let c = Coeff::ratio128(n, d).expect("positive denominator");
        assert_value(&c, n, d, "ratio128");
        let r = Rational::new(n, d).expect("positive denominator");
        prop_assert_eq!(c.floor(), r.floor());
        prop_assert_eq!(c.ceil(), r.ceil());
        prop_assert_eq!(c.is_integer(), r.is_integer());
        prop_assert_eq!(c.to_rational().unwrap(), r);
    }

    /// `Coeff::cmp` is exact across all tier combinations — checked
    /// against the independent 256-bit oracle, including the
    /// continued-fraction fallback territory where cross products
    /// overflow i128.
    #[test]
    fn cmp_matches_wide_oracle((n1, d1) in arb_fraction(), (n2, d2) in arb_fraction()) {
        let a = Coeff::ratio128(n1, d1).unwrap();
        let b = Coeff::ratio128(n2, d2).unwrap();
        prop_assert_eq!(a.cmp(&b), cmp_ratio(n1, d1, n2, d2));
        prop_assert_eq!(b.cmp(&a), cmp_ratio(n2, d2, n1, d1));
        prop_assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    /// Addition, subtraction, and multiplication agree with the
    /// rational-first arithmetic bit-for-bit: same values where both are
    /// defined, and the *same overflow boundary* — the tiered path fails
    /// exactly when the pre-refactor `Rational` path failed.
    #[test]
    fn arithmetic_matches_rational_first((n1, d1) in arb_fraction(), (n2, d2) in arb_fraction()) {
        let a = Coeff::ratio128(n1, d1).unwrap();
        let b = Coeff::ratio128(n2, d2).unwrap();
        let ra = Rational::new(n1, d1).unwrap();
        let rb = Rational::new(n2, d2).unwrap();
        let cases: [(&str, Result<Coeff, _>, Result<Rational, _>); 4] = [
            ("add", a.try_add(&b), ra.try_add(&rb)),
            ("sub", a.try_sub(&b), ra.try_sub(&rb)),
            ("mul", a.try_mul(&b), ra.try_mul(&rb)),
            ("neg", a.try_neg(), ra.try_neg()),
        ];
        for (op, tiered, rational) in cases {
            match (tiered, rational) {
                (Ok(c), Ok(r)) => assert_value(&c, r.numer(), r.denom(), op),
                (Err(e), Err(re)) => prop_assert_eq!(e, re, "{} error kind", op),
                (Ok(c), Err(e)) => prop_assert!(
                    false, "{} diverged: tiered Ok({c}), rational Err({e})", op),
                (Err(e), Ok(r)) => prop_assert!(
                    false, "{} diverged: tiered Err({e}), rational Ok({r})", op),
            }
        }
    }
}

/// The promotion chain itself: a computation that starts `Small`, is
/// pushed into `Wide` by an i64-overflowing product, and finally into
/// `Rat` when even i128 components overflow — with the exact value
/// preserved at every hop.
#[test]
fn promotion_chain_small_wide_rat() {
    // Small stays Small while products fit i64 components.
    let s = Coeff::ratio(3, 2).unwrap();
    let ss = s.try_mul(&s).unwrap();
    assert!(matches!(ss, Coeff::Small { .. }), "got {ss:?}");
    assert_value(&ss, 9, 4, "small*small");

    // i64-overflowing components promote to Wide.
    let big = Coeff::from_int(1i64 << 40);
    let wide = big.try_mul(&big).unwrap();
    assert!(matches!(wide, Coeff::Wide { .. }), "got {wide:?}");
    assert_value(&wide, 1i128 << 80, 1, "2^40 * 2^40");

    // i128-overflowing components promote to Rat, where normalization
    // shrinks them back into range.
    let a = Coeff::ratio128(3 << 100, 2 << 100).unwrap(); // 3/2, unreduced
    assert!(matches!(a, Coeff::Wide { .. }), "got {a:?}");
    let rat = a.try_mul(&a).unwrap();
    assert!(matches!(rat, Coeff::Rat(_)), "got {rat:?}");
    assert_value(&rat, 9, 4, "unreduced 3/2 squared");

    // The same chain through addition.
    let wide_sum = big.try_mul(&big).unwrap().try_add(&s).unwrap();
    assert!(matches!(wide_sum, Coeff::Wide { .. }), "got {wide_sum:?}");
    assert_value(&wide_sum, (1i128 << 81) + 3, 2, "2^80 + 3/2");
    let rat_sum = a.try_add(&a).unwrap();
    assert!(matches!(rat_sum, Coeff::Rat(_)), "got {rat_sum:?}");
    assert_value(&rat_sum, 3, 1, "unreduced 3/2 doubled");
}
