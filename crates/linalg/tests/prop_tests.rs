//! Property-based tests for the exact linear algebra substrate.

use dda_linalg::diophantine::solve;
use dda_linalg::factor::factorize;
use dda_linalg::num::{div_ceil, div_floor, extended_gcd, gcd, gcd_slice};
use dda_linalg::{Matrix, Rational};
use proptest::prelude::*;

fn arb_matrix() -> impl Strategy<Value = Matrix> {
    (1usize..=4, 1usize..=4).prop_flat_map(|(m, n)| {
        proptest::collection::vec(proptest::collection::vec(-9i64..=9, n), m)
            .prop_map(|rows| Matrix::from_rows(&rows))
    })
}

/// Determinant by cofactor expansion (tiny matrices only).
fn det(m: &Matrix) -> i128 {
    let n = m.rows();
    assert_eq!(n, m.cols());
    if n == 0 {
        return 1;
    }
    if n == 1 {
        return i128::from(m[(0, 0)]);
    }
    let mut acc = 0i128;
    for j in 0..n {
        let mut minor_rows = Vec::with_capacity(n - 1);
        for r in 1..n {
            let mut row = Vec::with_capacity(n - 1);
            for c in 0..n {
                if c != j {
                    row.push(m[(r, c)]);
                }
            }
            minor_rows.push(row);
        }
        let minor = Matrix::from_rows(&minor_rows);
        let sign = if j % 2 == 0 { 1 } else { -1 };
        acc += sign * i128::from(m[(0, j)]) * det(&minor);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1500))]

    /// gcd laws.
    #[test]
    fn gcd_divides_and_is_greatest(a in -1000i64..1000, b in -1000i64..1000) {
        let g = gcd(a, b);
        if a != 0 || b != 0 {
            prop_assert!(g > 0);
            prop_assert_eq!(a % g, 0);
            prop_assert_eq!(b % g, 0);
            // Any common divisor divides g.
            for d in 1..=20i64 {
                if a % d == 0 && b % d == 0 {
                    prop_assert_eq!(g % d, 0);
                }
            }
        }
        prop_assert_eq!(g, gcd(b, a));
    }

    /// Bézout identity.
    #[test]
    fn extended_gcd_identity(a in -10_000i64..10_000, b in -10_000i64..10_000) {
        let e = extended_gcd(a, b);
        prop_assert_eq!(e.g, gcd(a, b));
        prop_assert_eq!(a.checked_mul(e.x).unwrap() + b.checked_mul(e.y).unwrap(), e.g);
    }

    /// Floor/ceiling division against the mathematical definition.
    #[test]
    fn floor_ceil_definitions(a in -10_000i64..10_000, b in -100i64..100) {
        prop_assume!(b != 0);
        let f = div_floor(a, b);
        let c = div_ceil(a, b);
        // f = max { q : q*b ≤ a } for b > 0, min otherwise — check both
        // via the universal characterization f ≤ a/b < f+1.
        let lhs = i128::from(f) * i128::from(b);
        let rhs = i128::from(a);
        if b > 0 {
            prop_assert!(lhs <= rhs && lhs + i128::from(b) > rhs);
        } else {
            prop_assert!(lhs >= rhs && lhs + i128::from(b) < rhs);
        }
        prop_assert!(c >= f && c - f <= 1);
        prop_assert_eq!(c == f, a % b == 0);
    }

    /// Factorization invariants: A·U = E, U unimodular, E echelon.
    #[test]
    fn factorization_invariants(a in arb_matrix()) {
        let f = factorize(&a).expect("small inputs never overflow");
        prop_assert_eq!(a.mul_mat(&f.u).unwrap(), f.echelon.clone());
        prop_assert_eq!(det(&f.u).abs(), 1, "U must be unimodular");
        for (k, &r) in f.pivot_rows.iter().enumerate() {
            prop_assert!(f.echelon[(r, k)] > 0);
            for j in (k + 1)..a.cols() {
                prop_assert_eq!(f.echelon[(r, j)], 0);
            }
        }
    }

    /// Diophantine: returned solutions really solve; "no solution" is
    /// confirmed by a brute-force search over a small box.
    #[test]
    fn diophantine_against_brute_force(
        rows in proptest::collection::vec(
            proptest::collection::vec(-4i64..=4, 2), 1..=2),
        b in proptest::collection::vec(-8i64..=8, 2),
    ) {
        let m = rows.len();
        let a = Matrix::from_rows(&rows);
        let rhs = &b[..m];

        // Brute force over [-40, 40]^2: coefficients ≤ 4 and |rhs| ≤ 8
        // mean any solvable system has a solution with small entries
        // (Bézout coefficients are bounded by the inputs).
        let mut brute = None;
        'outer: for x in -40i64..=40 {
            for y in -40i64..=40 {
                if rows.iter().zip(rhs).all(|(r, &c)| r[0] * x + r[1] * y == c) {
                    brute = Some(vec![x, y]);
                    break 'outer;
                }
            }
        }

        match solve(&a, rhs).expect("no overflow") {
            None => prop_assert!(brute.is_none(),
                "solver says none, brute force found {brute:?}"),
            Some(sol) => {
                prop_assert_eq!(a.mul_vec(sol.particular()).unwrap(), rhs.to_vec());
                // Lattice points are solutions too.
                for t0 in -3i64..=3 {
                    let t: Vec<i64> = std::iter::once(t0)
                        .chain(std::iter::repeat(-t0))
                        .take(sol.num_free())
                        .collect();
                    let x = sol.at(&t).unwrap();
                    prop_assert_eq!(a.mul_vec(&x).unwrap(), rhs.to_vec());
                }
            }
        }
    }

    /// Rational arithmetic: ring laws and ordering consistency on a
    /// bounded domain.
    #[test]
    fn rational_laws(
        (an, ad) in (-50i128..=50, 1i128..=20),
        (bn, bd) in (-50i128..=50, 1i128..=20),
        (cn, cd) in (-50i128..=50, 1i128..=20),
    ) {
        let a = Rational::new(an, ad).unwrap();
        let b = Rational::new(bn, bd).unwrap();
        let c = Rational::new(cn, cd).unwrap();
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a - a, Rational::ZERO);
        // floor/ceil bracket the value.
        let fl = Rational::from_int(i64::try_from(a.floor()).unwrap());
        let ce = Rational::from_int(i64::try_from(a.ceil()).unwrap());
        prop_assert!(fl <= a && a <= ce);
        prop_assert_eq!(a.is_integer(), fl == ce);
        // Ordering is total and consistent with subtraction.
        prop_assert_eq!(a < b, (a - b).numer() < 0);
    }

    /// gcd_slice equals folding gcd.
    #[test]
    fn gcd_slice_fold(v in proptest::collection::vec(-500i64..=500, 0..6)) {
        let folded = v.iter().fold(0i64, |g, &x| gcd(g, x));
        prop_assert_eq!(gcd_slice(&v), folded);
    }
}
