//! The flight recorder: a fixed-capacity ring of completed-request
//! summaries plus automatic slow-request capture to disk.
//!
//! Two invariants shape everything here:
//!
//! 1. **The analysis path is never blocked and never fails.** The ring
//!    push is one atomic `fetch_add` plus a slot `try_lock` — if a
//!    reader happens to hold the slot, the summary is counted as
//!    dropped rather than waited for. Capture-file writes happen after
//!    the response is already computed, and any I/O failure degrades to
//!    a metered counter ([`CaptureStore::errors`]), never an error on
//!    the request.
//! 2. **Bounded everything.** The ring holds a fixed number of
//!    summaries; the capture directory holds at most
//!    [`CaptureStore::max_captures`] captures, oldest evicted first.
//!
//! Summaries are built from a request's [`TraceContext`] delta (plus
//! figures the service measures around the engine call), so the span
//! tree a capture renders is derived entirely from telemetry already
//! recorded on the allocation-free hot path — capturing a
//! deadline-exceeded request costs no re-analysis.
//!
//! [`TraceContext`]: crate::TraceContext

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::Counter;
use crate::registry::STAGE_LABELS;
use crate::span::json_escape;
use crate::MetricsRegistry;
use dda_core::pipeline::TraceId;
use dda_core::TestKind;

/// How a recorded request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestOutcome {
    /// Answered normally.
    Ok,
    /// Deadline expired; answered with sound conservative partials.
    DeadlineExceeded,
    /// Answered with an error status (bad input, failed check, ...).
    Error,
}

impl RequestOutcome {
    /// The stable label used in metrics and JSONL (`ok`, `deadline`,
    /// `error`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RequestOutcome::Ok => "ok",
            RequestOutcome::DeadlineExceeded => "deadline",
            RequestOutcome::Error => "error",
        }
    }
}

/// One completed request, as remembered by the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSummary {
    /// The request's trace id.
    pub trace_id: TraceId,
    /// Endpoint label (`/analyze`, `/batch`, `/parallel`, ...).
    pub endpoint: &'static str,
    /// How the request ended.
    pub outcome: RequestOutcome,
    /// HTTP status answered.
    pub status: u16,
    /// End-to-end wall time, nanoseconds.
    pub wall_nanos: u64,
    /// Programs in the request.
    pub programs: u64,
    /// Reference pairs analyzed.
    pub pairs: u64,
    /// Pairs spliced from warm memo entries.
    pub spliced: u64,
    /// Pairs actually re-solved.
    pub resolved: u64,
    /// Cascade calls per stage, indexed like
    /// [`STAGE_LABELS`](crate::registry::STAGE_LABELS).
    pub stage_calls: [u64; 4],
    /// Cascade nanoseconds per stage, same indexing.
    pub stage_nanos: [u64; 4],
    /// Non-cached GCD solves.
    pub gcd_calls: u64,
    /// Nanoseconds in non-cached GCD solves.
    pub gcd_nanos: u64,
    /// GCD results served from the memo.
    pub gcd_cache_hits: u64,
    /// Direction-vector refinements run.
    pub refinement_calls: u64,
    /// Nanoseconds in refinements.
    pub refinement_nanos: u64,
    /// Records faulted out of the v3 memo archive by this request.
    pub archive_faults: u64,
    /// Resident memo-byte growth over the request (may be negative
    /// under concurrent eviction).
    pub memo_bytes_delta: i64,
}

impl RequestSummary {
    /// Fills the telemetry columns (stage/GCD/refinement) from a
    /// request-local registry delta, leaving the service-level columns
    /// as the caller set them.
    #[must_use]
    pub fn with_local(mut self, local: &MetricsRegistry) -> RequestSummary {
        for &t in &TestKind::ALL {
            let s = local.stage_latency(t);
            self.stage_calls[t.index()] = s.count;
            self.stage_nanos[t.index()] = s.sum;
        }
        let gcd = local.gcd_latency();
        self.gcd_calls = gcd.count;
        self.gcd_nanos = gcd.sum;
        self.gcd_cache_hits = local.gcd_cache_hits();
        let refine = local.refinement_latency();
        self.refinement_calls = refine.count;
        self.refinement_nanos = refine.sum;
        self
    }

    /// A blank summary for `trace_id` on `endpoint` (everything else
    /// zero / `Ok`).
    #[must_use]
    pub fn blank(trace_id: TraceId, endpoint: &'static str) -> RequestSummary {
        RequestSummary {
            trace_id,
            endpoint,
            outcome: RequestOutcome::Ok,
            status: 200,
            wall_nanos: 0,
            programs: 0,
            pairs: 0,
            spliced: 0,
            resolved: 0,
            stage_calls: [0; 4],
            stage_nanos: [0; 4],
            gcd_calls: 0,
            gcd_nanos: 0,
            gcd_cache_hits: 0,
            refinement_calls: 0,
            refinement_nanos: 0,
            archive_faults: 0,
            memo_bytes_delta: 0,
        }
    }

    /// Renders the summary as one JSON object (no trailing newline).
    #[must_use]
    pub fn json_line(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"trace\":\"{}\",\"endpoint\":\"{}\",\"outcome\":\"{}\",\"status\":{},\
             \"wall_nanos\":{},\"programs\":{},\"pairs\":{},\"spliced\":{},\"resolved\":{},",
            self.trace_id,
            json_escape(self.endpoint),
            self.outcome.label(),
            self.status,
            self.wall_nanos,
            self.programs,
            self.pairs,
            self.spliced,
            self.resolved,
        );
        out.push_str("\"stages\":{");
        for (i, label) in STAGE_LABELS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{label}\":{{\"calls\":{},\"nanos\":{}}}",
                self.stage_calls[i], self.stage_nanos[i]
            );
        }
        let _ = write!(
            out,
            "}},\"gcd\":{{\"calls\":{},\"nanos\":{},\"cache_hits\":{}}},\
             \"refinement\":{{\"calls\":{},\"nanos\":{}}},\
             \"archive_faults\":{},\"memo_bytes_delta\":{}}}",
            self.gcd_calls,
            self.gcd_nanos,
            self.gcd_cache_hits,
            self.refinement_calls,
            self.refinement_nanos,
            self.archive_faults,
            self.memo_bytes_delta,
        );
        out
    }

    /// Renders the request's span tree as JSONL: a `request:<endpoint>`
    /// root plus one child per timed phase that actually ran, every
    /// line stamped with the trace id. Same field shape as
    /// [`SpanRecorder::to_jsonl`](crate::SpanRecorder::to_jsonl) plus
    /// `calls`.
    #[must_use]
    pub fn spans_jsonl(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"trace\":\"{}\",\"seq\":0,\"parent\":null,\"depth\":0,\
             \"name\":\"request:{}\",\"nanos\":{},\"calls\":1}}",
            self.trace_id,
            json_escape(self.endpoint),
            self.wall_nanos
        );
        let mut seq = 0u64;
        for (name, calls, nanos) in self.phase_rows() {
            seq += 1;
            let _ = writeln!(
                out,
                "{{\"trace\":\"{}\",\"seq\":{seq},\"parent\":0,\"depth\":1,\
                 \"name\":\"{name}\",\"nanos\":{nanos},\"calls\":{calls}}}",
                self.trace_id
            );
        }
        out
    }

    /// Renders the span tree as flamegraph folded stacks. The root
    /// line carries the wall time not attributed to any timed phase.
    #[must_use]
    pub fn spans_folded(&self) -> String {
        let root = format!("request:{}", self.endpoint);
        let mut out = String::new();
        let mut attributed = 0u64;
        for (name, _, nanos) in self.phase_rows() {
            attributed = attributed.saturating_add(nanos);
            let _ = writeln!(out, "{root};{name} {nanos}");
        }
        let _ = writeln!(out, "{root} {}", self.wall_nanos.saturating_sub(attributed));
        out
    }

    /// The timed phases that actually ran: (name, calls, nanos).
    fn phase_rows(&self) -> Vec<(String, u64, u64)> {
        let mut rows = Vec::new();
        if self.gcd_calls > 0 {
            rows.push(("gcd".to_string(), self.gcd_calls, self.gcd_nanos));
        }
        for (i, label) in STAGE_LABELS.iter().enumerate() {
            if self.stage_calls[i] > 0 {
                rows.push((
                    format!("stage:{label}"),
                    self.stage_calls[i],
                    self.stage_nanos[i],
                ));
            }
        }
        if self.refinement_calls > 0 {
            rows.push((
                "refinement".to_string(),
                self.refinement_calls,
                self.refinement_nanos,
            ));
        }
        rows
    }
}

/// A fixed-capacity ring of the most recent completed-request
/// summaries.
///
/// Writers claim a slot with one atomic `fetch_add` and fill it under a
/// `try_lock` — a contended slot (a reader mid-snapshot) increments
/// [`dropped`](FlightRecorder::dropped) instead of blocking, so
/// recording can never stall a request worker. Readers snapshot by
/// locking slots one at a time; summaries come back oldest-first.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<(u64, RequestSummary)>>>,
    next: AtomicU64,
    dropped: Counter,
}

impl FlightRecorder {
    /// Creates a recorder remembering the last `capacity` requests
    /// (clamped to at least 1).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            slots: (0..capacity.max(1)).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
            dropped: Counter::new(),
        }
    }

    /// Slots in the ring.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Requests recorded (including any later overwritten or dropped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Summaries dropped because their slot was contended at push time.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.get()
    }

    /// Records one completed request. Never blocks: a contended slot
    /// counts as dropped.
    pub fn push(&self, summary: RequestSummary) {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        match slot.try_lock() {
            Ok(mut guard) => *guard = Some((seq, summary)),
            Err(_) => self.dropped.inc(),
        }
    }

    /// The remembered summaries, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<RequestSummary> {
        let mut entries: Vec<(u64, RequestSummary)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().ok().and_then(|guard| guard.clone()))
            .collect();
        entries.sort_by_key(|(seq, _)| *seq);
        entries.into_iter().map(|(_, s)| s).collect()
    }

    /// The ring as JSONL, oldest first.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in self.snapshot() {
            out.push_str(&s.json_line());
            out.push('\n');
        }
        out
    }
}

/// Writes slow-request captures (`spans-<traceid>.jsonl` + folded
/// flamegraph) into a bounded directory.
#[derive(Debug)]
pub struct CaptureStore {
    dir: PathBuf,
    slow_nanos: u64,
    max_captures: usize,
    /// Trace ids in write order, for oldest-first eviction. Locked only
    /// on the capture path (slow requests) and the debug read path —
    /// never on the analysis path.
    written: Mutex<VecDeque<u64>>,
    captured: Counter,
    errors: Counter,
}

impl CaptureStore {
    /// Creates a store writing into `dir`, capturing requests slower
    /// than `slow_ms` milliseconds (0 disables the latency trigger —
    /// deadline-exceeded requests are always captured) and keeping at
    /// most `max_captures` captures (clamped to at least 1). The
    /// directory is created lazily on first capture.
    #[must_use]
    pub fn new(dir: PathBuf, slow_ms: u64, max_captures: usize) -> CaptureStore {
        CaptureStore {
            dir,
            slow_nanos: slow_ms.saturating_mul(1_000_000),
            max_captures: max_captures.max(1),
            written: Mutex::new(VecDeque::new()),
            captured: Counter::new(),
            errors: Counter::new(),
        }
    }

    /// The capture directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Whether this request warrants a capture: it hit its deadline, or
    /// the latency trigger is enabled and its wall time reached it.
    #[must_use]
    pub fn should_capture(&self, summary: &RequestSummary) -> bool {
        summary.outcome == RequestOutcome::DeadlineExceeded
            || (self.slow_nanos > 0 && summary.wall_nanos >= self.slow_nanos)
    }

    /// Captures written successfully so far.
    #[must_use]
    pub fn captured(&self) -> u64 {
        self.captured.get()
    }

    /// Capture writes that failed (the metered degradation — a full
    /// disk or bad directory never turns into a request error).
    #[must_use]
    pub fn errors(&self) -> u64 {
        self.errors.get()
    }

    fn jsonl_path(&self, id: TraceId) -> PathBuf {
        self.dir.join(format!("spans-{id}.jsonl"))
    }

    fn folded_path(&self, id: TraceId) -> PathBuf {
        self.dir.join(format!("spans-{id}.folded"))
    }

    /// Writes the capture for `summary`, evicting the oldest capture(s)
    /// beyond the bound. Best-effort by design: every failure path
    /// increments [`errors`](Self::errors) and returns.
    pub fn capture(&self, summary: &RequestSummary) {
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.dir)?;
            std::fs::write(self.jsonl_path(summary.trace_id), summary.spans_jsonl())?;
            std::fs::write(self.folded_path(summary.trace_id), summary.spans_folded())?;
            Ok(())
        };
        if write().is_err() {
            self.errors.inc();
            return;
        }
        self.captured.inc();
        let evict: Vec<u64> = {
            let mut written = match self.written.lock() {
                Ok(w) => w,
                Err(_) => {
                    return;
                }
            };
            written.push_back(summary.trace_id.0);
            let excess = written.len().saturating_sub(self.max_captures);
            written.drain(..excess).collect()
        };
        for old in evict {
            let _ = std::fs::remove_file(self.jsonl_path(TraceId(old)));
            let _ = std::fs::remove_file(self.folded_path(TraceId(old)));
        }
    }

    /// Reads one capture's span JSONL back, if present on disk.
    #[must_use]
    pub fn read(&self, id: TraceId) -> Option<String> {
        std::fs::read_to_string(self.jsonl_path(id)).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(id: u64, wall_ms: u64) -> RequestSummary {
        let mut s = RequestSummary::blank(TraceId(id), "/analyze");
        s.wall_nanos = wall_ms * 1_000_000;
        s.pairs = 3;
        s.resolved = 3;
        s.stage_calls[0] = 2;
        s.stage_nanos[0] = 500;
        s.gcd_calls = 3;
        s.gcd_nanos = 900;
        s
    }

    #[test]
    fn ring_keeps_the_most_recent_capacity_summaries_in_order() {
        let ring = FlightRecorder::with_capacity(3);
        for i in 1..=5u64 {
            ring.push(summary(i, i));
        }
        let ids: Vec<u64> = ring.snapshot().iter().map(|s| s.trace_id.0).collect();
        assert_eq!(ids, vec![3, 4, 5]);
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 0);
        let jsonl = ring.to_jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"trace\":\"0000000000000004\""));
    }

    #[test]
    fn summary_json_line_has_the_documented_fields() {
        let line = summary(0xab, 2).json_line();
        for needle in [
            "\"trace\":\"00000000000000ab\"",
            "\"endpoint\":\"/analyze\"",
            "\"outcome\":\"ok\"",
            "\"wall_nanos\":2000000",
            "\"pairs\":3",
            "\"spliced\":0",
            "\"resolved\":3",
            "\"svpc\":{\"calls\":2,\"nanos\":500}",
            "\"gcd\":{\"calls\":3,\"nanos\":900,\"cache_hits\":0}",
            "\"archive_faults\":0",
        ] {
            assert!(line.contains(needle), "missing {needle} in {line}");
        }
    }

    #[test]
    fn span_tree_attributes_phases_under_the_request_root() {
        let s = summary(7, 1);
        let jsonl = s.spans_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert!(lines[0].contains("\"name\":\"request:/analyze\""));
        assert!(lines[0].contains("\"parent\":null"));
        assert!(lines.iter().any(|l| l.contains("\"name\":\"gcd\"")));
        assert!(lines.iter().any(|l| l.contains("\"name\":\"stage:svpc\"")));
        assert!(lines.iter().all(|l| l.contains("\"trace\":\"")));
        let folded = s.spans_folded();
        assert!(folded.contains("request:/analyze;gcd 900"));
        assert!(folded.contains("request:/analyze;stage:svpc 500"));
    }

    #[test]
    fn capture_store_bounds_the_directory_and_serves_reads() {
        let dir = std::env::temp_dir().join(format!("dda-capture-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = CaptureStore::new(dir.clone(), 0, 2);
        for i in 1..=3u64 {
            let mut s = summary(i, 1);
            s.outcome = RequestOutcome::DeadlineExceeded;
            assert!(store.should_capture(&s), "deadline always captures");
            store.capture(&s);
        }
        assert_eq!(store.captured(), 3);
        assert_eq!(store.errors(), 0);
        // Oldest capture evicted; the two newest readable.
        assert!(store.read(TraceId(1)).is_none());
        for i in 2..=3u64 {
            let body = store.read(TraceId(i)).expect("capture readable");
            assert!(body.contains(&format!("\"trace\":\"{}\"", TraceId(i))));
        }
        let files = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(files, 4, "2 captures x (jsonl + folded)");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn latency_trigger_respects_the_threshold() {
        let store = CaptureStore::new(PathBuf::from("/nonexistent"), 10, 4);
        assert!(!store.should_capture(&summary(1, 9)));
        assert!(store.should_capture(&summary(1, 10)));
        let disabled = CaptureStore::new(PathBuf::from("/nonexistent"), 0, 4);
        assert!(!disabled.should_capture(&summary(1, u64::MAX / 2_000_000)));
    }

    #[test]
    fn capture_write_failure_degrades_to_a_counter() {
        // Point the store at a path that cannot be a directory (a
        // file), so create_dir_all fails.
        let blocker = std::env::temp_dir().join(format!("dda-capture-blk-{}", std::process::id()));
        std::fs::write(&blocker, b"x").unwrap();
        let store = CaptureStore::new(blocker.clone(), 0, 2);
        let mut s = summary(9, 1);
        s.outcome = RequestOutcome::DeadlineExceeded;
        store.capture(&s);
        assert_eq!(store.captured(), 0);
        assert_eq!(store.errors(), 1, "failure is metered, not raised");
        assert!(store.read(TraceId(9)).is_none());
        let _ = std::fs::remove_file(&blocker);
    }
}
