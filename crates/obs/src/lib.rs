//! Always-on observability for the dependence analyzer.
//!
//! The paper's central empirical claim (§6) is that cascaded exact
//! tests are *cheap in practice*; this crate provides the measurement
//! layer that defends it. Three pieces:
//!
//! 1. **Metrics** ([`Counter`], [`Histogram`], [`MetricsRegistry`]) —
//!    lock-free atomics, log2-bucketed latency histograms with
//!    p50/p90/p99 summaries, no allocation on the hot path (pinned by
//!    `tests/alloc.rs` with a counting global allocator).
//! 2. **Probes and spans** ([`MetricsProbe`], [`SpanRecorder`]) — both
//!    implement [`dda_core::pipeline::Probe`]; the former feeds the
//!    registry, the latter rebuilds the analyze → pair → stage
//!    hierarchy with monotonic sequence numbers and renders JSONL or
//!    flamegraph folded stacks.
//! 3. **Snapshots** ([`MetricsSnapshot`]) — join the registry with the
//!    authoritative `AnalysisStats` and memo-table counters, rendered
//!    as Prometheus text exposition or JSON; [`prom`] parses and
//!    validates the exposition for tests and CI.
//! 4. **Request-scoped tracing and the flight recorder**
//!    ([`TraceContext`], [`FlightRecorder`], [`CaptureStore`]) — a
//!    64-bit trace id plus a request-local registry delta threaded
//!    from the service through the engine's waves into the probes, a
//!    lock-free ring of completed-request summaries, and bounded
//!    on-disk slow-request captures (span JSONL + folded flamegraph).
//!
//! Determinism is a hard invariant: nothing here feeds back into
//! analysis results, metrics stay outside the bit-compared
//! `AnalysisStats`, and span/trace output carries **no wall-clock
//! timestamps** — only the per-phase durations the trace events
//! already measure.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod flight;
pub mod metrics;
pub mod probe;
pub mod prom;
pub mod registry;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use flight::{CaptureStore, FlightRecorder, RequestOutcome, RequestSummary};
pub use metrics::{Counter, Gauge, Histogram, LatencySummary, HISTOGRAM_BUCKETS};
pub use probe::MetricsProbe;
pub use registry::{MemoTableKind, MetricsRegistry, WaveReport, WorkerWork, GRAPH_EDGE_LABELS};
pub use snapshot::{
    EngineSection, GcdSection, GraphSection, MemoSection, MetricsSnapshot, PairsSection,
    RefinementSection, ServiceSection, StageSection,
};
pub use span::{Span, SpanRecorder};
pub use trace::{TraceContext, TraceId, TraceIdGen};
