//! Lock-free metric primitives: atomic counters and log2-bucketed
//! latency histograms.
//!
//! Both types are designed for an *always-on* hot path: recording a
//! value is a handful of relaxed `fetch_add`s, never takes a lock, and
//! never allocates. Reading is approximate under concurrent writes
//! (each atomic is loaded independently) which is fine for telemetry;
//! every test that needs exact values reads after the writers are done.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A value that can go up and down: in-flight requests, resident
/// bytes, queue depths. Same discipline as [`Counter`] — relaxed
/// atomics, no locks, no allocation on the hot path.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Returns the current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the gauge to zero.
    pub fn reset(&self) {
        self.set(0);
    }
}

/// A monotonically increasing event counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Returns the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: one for the value 0, one per power of
/// two up to `2^63`, and a final bucket for values `>= 2^63`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed histogram of `u64` samples (latencies in nanos).
///
/// Bucket 0 holds the value 0 exactly; bucket `i` (for `1 <= i <= 63`)
/// holds values in `[2^(i-1), 2^i)`; bucket 64 holds everything at or
/// above `2^63`. Quantile estimates are therefore exact to within a
/// factor of two, which is plenty for latency attribution, and the
/// whole structure is a fixed array of atomics: recording never
/// allocates and never locks.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time read of a [`Histogram`]: total count and sum plus
/// the p50/p90/p99 upper-bound estimates.
///
/// The quantiles are `Option`s: `None` is the documented sentinel for
/// "no samples recorded" — an empty histogram has no percentiles, and
/// rendering layers must say so (Prometheus output omits the quantile
/// samples, JSON renders `null`) instead of inventing a misleading
/// zero. With at least one sample every quantile is `Some(upper)`, the
/// inclusive upper bound of the log2 bucket containing that rank; the
/// saturated top bucket (values `>= 2^63`) reports `u64::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples (wrapping on overflow).
    pub sum: u64,
    /// Upper bound of the bucket containing the 50th percentile;
    /// `None` when the histogram is empty.
    pub p50: Option<u64>,
    /// Upper bound of the bucket containing the 90th percentile;
    /// `None` when the histogram is empty.
    pub p90: Option<u64>,
    /// Upper bound of the bucket containing the 99th percentile;
    /// `None` when the histogram is empty.
    pub p99: Option<u64>,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Index of the bucket that holds `value`.
    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Largest value representable by bucket `index` (inclusive).
    fn bucket_upper(index: usize) -> u64 {
        match index {
            0 => 0,
            64 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Records one sample. Three relaxed `fetch_add`s; no allocation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Resets every bucket and the count/sum to zero.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }

    /// Loads all buckets once and returns count, sum, and the three
    /// standard quantiles computed from that single consistent view.
    pub fn summary(&self) -> LatencySummary {
        let counts: [u64; HISTOGRAM_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        let total: u64 = counts.iter().sum();
        let quantile = |q: f64| -> Option<u64> {
            if total == 0 {
                // The documented sentinel: an empty histogram has no
                // percentiles, not zero-nanosecond ones.
                return None;
            }
            // Rank of the sample that realizes quantile q, 1-based.
            let mut rank = (q * total as f64).ceil() as u64;
            rank = rank.clamp(1, total);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                seen += c;
                if seen >= rank {
                    return Some(Self::bucket_upper(i));
                }
            }
            Some(Self::bucket_upper(HISTOGRAM_BUCKETS - 1))
        };
        LatencySummary {
            count: total,
            sum: self.sum(),
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gauge_basics() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.inc();
        g.add(4);
        g.dec();
        assert_eq!(g.get(), 4);
        g.add(-10);
        assert_eq!(g.get(), -6, "gauges may go negative");
        g.set(7);
        assert_eq!(g.get(), 7);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn gauge_concurrent_inc_dec_balances() {
        let g = Gauge::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        g.inc();
                        g.dec();
                    }
                });
            }
        });
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1 << 62), 63);
        assert_eq!(Histogram::bucket_index(1 << 63), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn bucket_upper_bounds_contain_their_values() {
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1 << 40, u64::MAX] {
            let idx = Histogram::bucket_index(v);
            assert!(v <= Histogram::bucket_upper(idx), "value {v} bucket {idx}");
            if idx > 0 {
                assert!(v > Histogram::bucket_upper(idx - 1));
            }
        }
    }

    #[test]
    fn summary_on_empty_histogram_is_the_sentinel() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.sum, 0);
        // The documented sentinel: no samples means no percentiles —
        // `None`, never a fabricated 0.
        assert_eq!((s.p50, s.p90, s.p99), (None, None, None));
        assert_eq!(s, LatencySummary::default());
    }

    #[test]
    fn summary_quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        // 90 samples of ~100ns (bucket [64,128)) and 10 of ~1000ns
        // (bucket [512,1024)).
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let s = h.summary();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 90 * 100 + 10 * 1000);
        assert_eq!(s.p50, Some(127));
        assert_eq!(s.p90, Some(127));
        assert_eq!(s.p99, Some(1023));
    }

    #[test]
    fn summary_single_sample() {
        // One observation: every quantile is that sample's bucket
        // upper bound — present, not a sentinel.
        let h = Histogram::new();
        h.record(5);
        let s = h.summary();
        assert_eq!(s.count, 1);
        assert_eq!((s.p50, s.p90, s.p99), (Some(7), Some(7), Some(7)));
    }

    #[test]
    fn summary_saturated_top_bucket_reports_u64_max() {
        // Values at or above 2^63 land in the open-ended top bucket;
        // its upper "bound" is u64::MAX, documented as "at or above
        // 2^63", never a wrapped or truncated midpoint.
        let h = Histogram::new();
        h.record(1 << 63);
        h.record(u64::MAX);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(
            (s.p50, s.p90, s.p99),
            (Some(u64::MAX), Some(u64::MAX), Some(u64::MAX))
        );
    }

    #[test]
    fn reset_clears_everything() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.summary(), LatencySummary::default());
    }

    #[test]
    fn concurrent_recording_totals_are_exact() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for v in 0..1000u64 {
                        h.record(v);
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert_eq!(h.sum(), 4 * (999 * 1000 / 2));
    }
}
