//! A [`Probe`] that feeds the metrics registry.

use crate::MetricsRegistry;
use dda_core::pipeline::{Probe, TraceEvent, TraceId};
use dda_core::StageTimings;

/// A pipeline probe that records stage/GCD/refinement telemetry into a
/// shared [`MetricsRegistry`] while also accumulating the same
/// [`StageTimings`] a `StatsProbe` would.
///
/// Recording is allocation-free: the interesting events carry only
/// `Copy` payloads and each lands as a few relaxed atomic adds. Events
/// with owned payloads (`Reduced`, `Witness`, `Directions`, ...) are
/// consumed by value exactly like every other probe, so the analyzer's
/// behaviour is identical to running with `NullProbe` — the
/// determinism proptests in `tests/obs.rs` pin that down.
///
/// A probe built with [`scoped`](MetricsProbe::scoped) additionally
/// *tees* every recording into a request-local registry (the
/// [`TraceContext`](crate::TraceContext) delta) and carries the
/// request's [`TraceId`] — one more relaxed atomic add per event, still
/// lock- and allocation-free.
#[derive(Debug)]
pub struct MetricsProbe<'a> {
    registry: &'a MetricsRegistry,
    local: Option<&'a MetricsRegistry>,
    trace: Option<TraceId>,
    /// The same per-stage wall-time aggregate `StatsProbe` collects,
    /// so callers swapping `StatsProbe` for `MetricsProbe` keep their
    /// timing reports unchanged.
    pub timings: StageTimings,
}

impl<'a> MetricsProbe<'a> {
    /// Creates a probe recording into `registry`.
    pub fn new(registry: &'a MetricsRegistry) -> Self {
        MetricsProbe {
            registry,
            local: None,
            trace: None,
            timings: StageTimings::default(),
        }
    }

    /// Creates a probe recording into `registry` and, when a request
    /// scope is attached, teeing the same events into its local
    /// registry under its trace id.
    pub fn scoped(
        registry: &'a MetricsRegistry,
        local: Option<&'a MetricsRegistry>,
        trace: Option<TraceId>,
    ) -> Self {
        MetricsProbe {
            registry,
            local,
            trace,
            timings: StageTimings::default(),
        }
    }
}

impl Probe for MetricsProbe<'_> {
    fn record(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::Stage {
                test,
                verdict,
                nanos,
            } => {
                self.registry.record_stage(test, verdict, nanos);
                if let Some(local) = self.local {
                    local.record_stage(test, verdict, nanos);
                }
                self.timings.record(test, nanos);
            }
            TraceEvent::Gcd {
                verdict,
                cached,
                nanos,
            } => {
                self.registry.record_gcd(verdict, cached, nanos);
                if let Some(local) = self.local {
                    local.record_gcd(verdict, cached, nanos);
                }
                // Exactly what `StatsProbe` does: every GCD phase is
                // timed, cached or not.
                self.timings.record_gcd(nanos);
            }
            TraceEvent::Directions { tests, nanos, .. } => {
                self.registry.record_refinement(tests, nanos);
                if let Some(local) = self.local {
                    local.record_refinement(tests, nanos);
                }
            }
            _ => {}
        }
    }

    fn trace(&self) -> Option<TraceId> {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_core::pipeline::{GcdVerdict, StageVerdict};
    use dda_core::result::DistanceVector;
    use dda_core::TestKind;

    #[test]
    fn probe_routes_events_into_registry_and_timings() {
        let reg = MetricsRegistry::new();
        let mut probe = MetricsProbe::new(&reg);
        probe.record(TraceEvent::Stage {
            test: TestKind::Svpc,
            verdict: StageVerdict::Independent,
            nanos: 10,
        });
        probe.record(TraceEvent::Gcd {
            verdict: GcdVerdict::Lattice,
            cached: false,
            nanos: 20,
        });
        probe.record(TraceEvent::Gcd {
            verdict: GcdVerdict::Lattice,
            cached: true,
            nanos: 1,
        });
        probe.record(TraceEvent::Directions {
            vectors: Vec::new(),
            distance: DistanceVector::default(),
            tests: 3,
            exact: true,
            nanos: 40,
        });
        assert_eq!(reg.stage_verdicts(TestKind::Svpc), [1, 0, 0, 0]);
        assert_eq!(reg.gcd_verdicts(), [0, 2, 0]);
        assert_eq!(reg.gcd_cache_hits(), 1);
        assert_eq!(reg.refinement_cascade_tests(), 3);
        assert_eq!(probe.timings.calls_for(TestKind::Svpc), 1);
        // Timings mirror StatsProbe: both GCD events count, cached too.
        assert_eq!(probe.timings.gcd_calls, 2);
        assert_eq!(probe.timings.gcd_nanos, 21);
        assert_eq!(probe.trace(), None);
    }

    #[test]
    fn scoped_probe_tees_into_the_local_registry() {
        let global = MetricsRegistry::new();
        let local = MetricsRegistry::new();
        let mut probe = MetricsProbe::scoped(&global, Some(&local), Some(TraceId(9)));
        probe.record(TraceEvent::Stage {
            test: TestKind::Acyclic,
            verdict: StageVerdict::Dependent,
            nanos: 5,
        });
        probe.record(TraceEvent::Gcd {
            verdict: GcdVerdict::Independent,
            cached: false,
            nanos: 7,
        });
        probe.record(TraceEvent::Directions {
            vectors: Vec::new(),
            distance: DistanceVector::default(),
            tests: 2,
            exact: true,
            nanos: 11,
        });
        // Both registries saw exactly the same recordings.
        for reg in [&global, &local] {
            assert_eq!(reg.stage_verdicts(TestKind::Acyclic), [0, 1, 0, 0]);
            assert_eq!(reg.gcd_verdicts(), [1, 0, 0]);
            assert_eq!(reg.refinement_cascade_tests(), 2);
        }
        assert_eq!(probe.trace(), Some(TraceId(9)));
    }
}
