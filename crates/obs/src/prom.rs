//! A small Prometheus text-exposition parser and validator.
//!
//! Just enough of the format to let tests and CI validate what
//! [`MetricsSnapshot::to_prometheus`](crate::MetricsSnapshot::to_prometheus)
//! emits: `# HELP`/`# TYPE` headers, samples with optional labels, and
//! the structural rules that matter (every sample's metric has a
//! declared type, no duplicate type declarations, no duplicate
//! samples, finite non-negative counter values).

use std::collections::{BTreeMap, BTreeSet};

/// One parsed sample line.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Sample name as written (may carry `_sum`/`_count` suffixes).
    pub name: String,
    /// Label pairs in source order.
    pub labels: Vec<(String, String)>,
    /// The value.
    pub value: f64,
}

/// A parsed exposition: declared types plus all samples.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Metric name → declared type (`counter`, `gauge`, `summary`, ...).
    pub types: BTreeMap<String, String>,
    /// All samples, in source order.
    pub samples: Vec<Sample>,
}

impl Exposition {
    /// The value of the sample with this exact name and label set (label
    /// order ignored), if present.
    #[must_use]
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let want: BTreeSet<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
            .collect();
        self.samples
            .iter()
            .find(|s| s.name == name && s.labels.iter().cloned().collect::<BTreeSet<_>>() == want)
            .map(|s| s.value)
    }

    /// All samples whose name equals `name`.
    pub fn samples_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Sample> {
        self.samples.iter().filter(move |s| s.name == name)
    }

    /// The metric (base) name a sample belongs to: strips a
    /// `_sum`/`_count` suffix when the remainder is a declared summary
    /// or histogram.
    #[must_use]
    pub fn base_name<'a>(&self, sample_name: &'a str) -> &'a str {
        for suffix in ["_sum", "_count", "_bucket"] {
            if let Some(base) = sample_name.strip_suffix(suffix) {
                if matches!(
                    self.types.get(base).map(String::as_str),
                    Some("summary" | "histogram")
                ) {
                    return base;
                }
            }
        }
        sample_name
    }
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn parse_labels(body: &str, line_no: usize) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("line {line_no}: label without `=`"))?;
        let key = rest[..eq].trim().to_string();
        if !valid_name(&key) {
            return Err(format!("line {line_no}: bad label name `{key}`"));
        }
        rest = rest[eq + 1..].trim_start();
        if !rest.starts_with('"') {
            return Err(format!("line {line_no}: label value not quoted"));
        }
        rest = &rest[1..];
        let mut value = String::new();
        let mut chars = rest.char_indices();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    let (_, esc) = chars
                        .next()
                        .ok_or_else(|| format!("line {line_no}: dangling escape"))?;
                    match esc {
                        '\\' => value.push('\\'),
                        '"' => value.push('"'),
                        'n' => value.push('\n'),
                        other => return Err(format!("line {line_no}: bad escape `\\{other}`")),
                    }
                }
                '"' => {
                    end = Some(i);
                    break;
                }
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("line {line_no}: unterminated label value"))?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start();
        if let Some(stripped) = rest.strip_prefix(',') {
            rest = stripped.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("line {line_no}: junk after label value"));
        }
    }
    Ok(labels)
}

/// Parses and validates a text exposition.
///
/// Errors on: malformed header or sample lines, invalid metric/label
/// names, duplicate `# TYPE` declarations, unknown metric types,
/// samples whose metric has no declared type, duplicate samples (same
/// name and label set), non-finite values, and negative values on
/// metrics declared `counter`.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    const KNOWN_TYPES: [&str; 5] = ["counter", "gauge", "summary", "histogram", "untyped"];
    let mut exp = Exposition::default();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {line_no}: TYPE without name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {line_no}: TYPE without type"))?;
            if parts.next().is_some() {
                return Err(format!("line {line_no}: junk after TYPE"));
            }
            if !valid_name(name) {
                return Err(format!("line {line_no}: bad metric name `{name}`"));
            }
            if !KNOWN_TYPES.contains(&kind) {
                return Err(format!("line {line_no}: unknown type `{kind}`"));
            }
            // The `_total` suffix is the counter convention; a gauge
            // wearing it would read as monotone to every scraper.
            if kind == "gauge" && name.ends_with("_total") {
                return Err(format!(
                    "line {line_no}: `{name}` declared gauge but named like a counter (`_total`)"
                ));
            }
            if exp
                .types
                .insert(name.to_string(), kind.to_string())
                .is_some()
            {
                return Err(format!("line {line_no}: duplicate TYPE for `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            // HELP and comments: free-form.
            continue;
        }
        // Sample: name[{labels}] value
        let (name_part, rest) = match line.find('{') {
            Some(brace) => {
                let close = line
                    .rfind('}')
                    .ok_or_else(|| format!("line {line_no}: unterminated labels"))?;
                if close < brace {
                    return Err(format!("line {line_no}: unterminated labels"));
                }
                (&line[..brace], {
                    let labels = &line[brace + 1..close];
                    let value = &line[close + 1..];
                    (Some(labels), value)
                })
            }
            None => {
                let sp = line
                    .find(char::is_whitespace)
                    .ok_or_else(|| format!("line {line_no}: sample without value"))?;
                (&line[..sp], (None, &line[sp..]))
            }
        };
        let (labels_body, value_part) = rest;
        let name = name_part.trim();
        if !valid_name(name) {
            return Err(format!("line {line_no}: bad metric name `{name}`"));
        }
        let labels = match labels_body {
            Some(body) => parse_labels(body, line_no)?,
            None => Vec::new(),
        };
        let mut toks = value_part.split_whitespace();
        let value_tok = toks
            .next()
            .ok_or_else(|| format!("line {line_no}: sample without value"))?;
        if toks.next().is_some() {
            return Err(format!("line {line_no}: unexpected trailing tokens"));
        }
        let value: f64 = value_tok
            .parse()
            .map_err(|_| format!("line {line_no}: bad value `{value_tok}`"))?;
        if !value.is_finite() {
            return Err(format!("line {line_no}: non-finite value"));
        }
        let sample = Sample {
            name: name.to_string(),
            labels,
            value,
        };
        let base = exp.base_name(&sample.name).to_string();
        let kind = exp
            .types
            .get(&base)
            .ok_or_else(|| format!("line {line_no}: `{base}` has no TYPE declaration"))?;
        if kind == "counter" && value < 0.0 {
            return Err(format!("line {line_no}: negative counter `{name}`"));
        }
        let mut ident: Vec<String> = sample
            .labels
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect();
        ident.sort();
        let ident = format!("{name}|{}", ident.join(","));
        if !seen.insert(ident) {
            return Err(format!("line {line_no}: duplicate sample `{name}`"));
        }
        exp.samples.push(sample);
    }
    Ok(exp)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_headers_labels_and_values() {
        let text = "\
# HELP dda_x_total Things.
# TYPE dda_x_total counter
dda_x_total{kind=\"a\"} 3
dda_x_total{kind=\"b\"} 4
# TYPE dda_lat summary
dda_lat{quantile=\"0.5\"} 10
dda_lat_sum 30
dda_lat_count 2
";
        let exp = parse_exposition(text).unwrap();
        assert_eq!(exp.types["dda_x_total"], "counter");
        assert_eq!(exp.value("dda_x_total", &[("kind", "b")]), Some(4.0));
        assert_eq!(exp.value("dda_lat_count", &[]), Some(2.0));
        assert_eq!(exp.base_name("dda_lat_sum"), "dda_lat");
        assert_eq!(exp.base_name("dda_x_total"), "dda_x_total");
        assert_eq!(exp.samples.len(), 5);
    }

    #[test]
    fn rejects_duplicate_types_and_samples() {
        let dup_type = "# TYPE a counter\n# TYPE a counter\n";
        assert!(parse_exposition(dup_type)
            .unwrap_err()
            .contains("duplicate TYPE"));
        let dup_sample = "# TYPE a counter\na{x=\"1\"} 1\na{x=\"1\"} 2\n";
        assert!(parse_exposition(dup_sample)
            .unwrap_err()
            .contains("duplicate sample"));
    }

    #[test]
    fn rejects_untyped_samples_and_bad_values() {
        assert!(parse_exposition("a 1\n").unwrap_err().contains("no TYPE"));
        assert!(parse_exposition("# TYPE a counter\na -1\n")
            .unwrap_err()
            .contains("negative counter"));
        assert!(parse_exposition("# TYPE a gauge\na nope\n")
            .unwrap_err()
            .contains("bad value"));
        assert!(parse_exposition("# TYPE a wat\n")
            .unwrap_err()
            .contains("unknown type"));
    }

    #[test]
    fn gauges_may_be_fractional() {
        let exp = parse_exposition("# TYPE u gauge\nu 0.8333333333333334\n").unwrap();
        assert!((exp.value("u", &[]).unwrap() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn gauges_may_be_negative_but_not_named_total() {
        // Negative gauge values are legal (unlike counters)…
        let exp = parse_exposition("# TYPE inflight gauge\ninflight -2\n").unwrap();
        assert_eq!(exp.value("inflight", &[]), Some(-2.0));
        // …but a gauge must not wear the counter naming convention.
        assert!(parse_exposition("# TYPE x_total gauge\nx_total 1\n")
            .unwrap_err()
            .contains("named like a counter"));
        // Counters named `_total` stay fine.
        assert!(parse_exposition("# TYPE x_total counter\nx_total 1\n").is_ok());
    }

    #[test]
    fn own_exposition_round_trips() {
        use crate::{MetricsRegistry, MetricsSnapshot};
        use dda_core::pipeline::StageVerdict;
        use dda_core::TestKind;
        let reg = MetricsRegistry::with_workers(2);
        reg.record_stage(TestKind::Svpc, StageVerdict::Independent, 100);
        let text = MetricsSnapshot::from_registry(&reg)
            .with_memo_table("full", dda_core::MemoCounters::default(), vec![0, 0])
            .to_prometheus();
        let exp = parse_exposition(&text).expect("our own exposition must validate");
        assert_eq!(
            exp.value(
                "dda_stage_verdicts_total",
                &[("stage", "svpc"), ("verdict", "independent")]
            ),
            Some(1.0)
        );
        assert_eq!(exp.types["dda_stage_latency_nanos"], "summary");
    }
}
