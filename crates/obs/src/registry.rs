//! The always-on metrics registry.
//!
//! One [`MetricsRegistry`] lives for the duration of an analysis run
//! (the engine owns one; the CLI builds one for serial runs). Every
//! field is an atomic [`Counter`] or [`Histogram`], so recording from
//! worker threads is lock-free and allocation-free, and the registry is
//! deliberately kept *outside* the bit-compared [`AnalysisStats`]: the
//! analyzer's semantics and statistics are byte-identical whether or
//! not anyone is looking at the metrics.
//!
//! [`AnalysisStats`]: dda_core::stats::AnalysisStats

use crate::metrics::{Counter, Histogram};
use dda_core::pipeline::{GcdVerdict, StageVerdict};
use dda_core::TestKind;

/// Label tokens for the four cascade stages, indexed by
/// [`TestKind::index`].
pub const STAGE_LABELS: [&str; 4] = ["svpc", "acyclic", "residue", "fm"];

/// Label tokens for stage verdicts, indexed by [`stage_verdict_index`].
pub const STAGE_VERDICT_LABELS: [&str; 4] = ["independent", "dependent", "unknown", "pass"];

/// Label tokens for GCD verdicts, indexed by [`gcd_verdict_index`].
pub const GCD_VERDICT_LABELS: [&str; 3] = ["independent", "lattice", "overflow"];

/// Label tokens for dependence-graph edge kinds, in
/// [`DependenceKind`](dda_core::DependenceKind) declaration order
/// (flow, anti, output, input).
pub const GRAPH_EDGE_LABELS: [&str; 4] = ["flow", "anti", "output", "input"];

/// Dense index for a [`StageVerdict`], matching [`STAGE_VERDICT_LABELS`].
pub fn stage_verdict_index(verdict: StageVerdict) -> usize {
    match verdict {
        StageVerdict::Independent => 0,
        StageVerdict::Dependent => 1,
        StageVerdict::Unknown => 2,
        StageVerdict::Pass => 3,
    }
}

/// Dense index for a [`GcdVerdict`], matching [`GCD_VERDICT_LABELS`].
pub fn gcd_verdict_index(verdict: GcdVerdict) -> usize {
    match verdict {
        GcdVerdict::Independent => 0,
        GcdVerdict::Lattice => 1,
        GcdVerdict::Overflow => 2,
    }
}

/// Which memo table a leader election ran for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoTableKind {
    /// The full-result memo table.
    Full,
    /// The GCD-phase memo table.
    Gcd,
}

/// Per-worker contribution to one parallel wave, as measured by the
/// engine's pool.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerWork {
    /// Items this worker processed.
    pub tasks: u64,
    /// Nanoseconds this worker spent inside the mapped closure.
    pub busy_nanos: u64,
    /// Nanoseconds between wave start and this worker picking up its
    /// first item.
    pub queue_wait_nanos: u64,
}

/// What one parallel wave looked like: wall time plus the per-worker
/// breakdown. Plain data, so the engine's pool can stay free of any
/// metrics dependency.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaveReport {
    /// Wall-clock nanoseconds for the whole wave.
    pub wall_nanos: u64,
    /// One entry per worker thread that participated.
    pub workers: Vec<WorkerWork>,
}

/// Per-worker counter slot in the registry.
#[derive(Debug, Default)]
struct WorkerSlot {
    tasks: Counter,
    busy_nanos: Counter,
}

/// The lock-free registry of `dda_*` metrics.
///
/// Pipeline-facing recorders ([`record_stage`], [`record_gcd`],
/// [`record_refinement`]) are fed by [`MetricsProbe`]; engine-facing
/// recorders ([`record_wave`], [`record_leader_elections`]) are called
/// by the batch engine. Memo-table and pair-outcome figures are *not*
/// duplicated here — they are read from their authoritative sources
/// (the memo tables' own counters and `AnalysisStats`) when a
/// [`MetricsSnapshot`](crate::MetricsSnapshot) is taken.
///
/// [`record_stage`]: MetricsRegistry::record_stage
/// [`record_gcd`]: MetricsRegistry::record_gcd
/// [`record_refinement`]: MetricsRegistry::record_refinement
/// [`record_wave`]: MetricsRegistry::record_wave
/// [`record_leader_elections`]: MetricsRegistry::record_leader_elections
/// [`MetricsProbe`]: crate::MetricsProbe
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    stage_latency: [Histogram; 4],
    stage_verdicts: [[Counter; 4]; 4],
    gcd_latency: Histogram,
    gcd_verdicts: [Counter; 3],
    gcd_cache_hits: Counter,
    refinement_latency: Histogram,
    refinement_cascade_tests: Counter,
    waves: Counter,
    tasks: Counter,
    busy_nanos: Counter,
    capacity_nanos: Counter,
    queue_wait_nanos: Counter,
    leader_elections_full: Counter,
    leader_elections_gcd: Counter,
    incremental_spliced: Counter,
    incremental_resolved: Counter,
    graph_edges: [Counter; 4],
    graph_parallel_loops: Counter,
    graph_sequential_loops: Counter,
    graph_build_latency: Histogram,
    worker_slots: Vec<WorkerSlot>,
}

impl MetricsRegistry {
    /// Creates a registry with no per-worker slots (serial use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a registry with `workers` per-worker counter slots.
    pub fn with_workers(workers: usize) -> Self {
        MetricsRegistry {
            worker_slots: (0..workers).map(|_| WorkerSlot::default()).collect(),
            ..Self::default()
        }
    }

    /// Number of per-worker slots this registry was sized for.
    pub fn worker_slots(&self) -> usize {
        self.worker_slots.len()
    }

    /// Records one cascade-stage outcome with its latency.
    pub fn record_stage(&self, test: TestKind, verdict: StageVerdict, nanos: u64) {
        self.stage_latency[test.index()].record(nanos);
        self.stage_verdicts[test.index()][stage_verdict_index(verdict)].inc();
    }

    /// Records one GCD-phase outcome. `cached` marks results served
    /// from the GCD memo rather than solved.
    pub fn record_gcd(&self, verdict: GcdVerdict, cached: bool, nanos: u64) {
        if cached {
            self.gcd_cache_hits.inc();
        } else {
            self.gcd_latency.record(nanos);
        }
        self.gcd_verdicts[gcd_verdict_index(verdict)].inc();
    }

    /// Records one direction-vector refinement: how many cascade tests
    /// it issued and how long the whole refinement took.
    pub fn record_refinement(&self, cascade_tests: u64, nanos: u64) {
        self.refinement_latency.record(nanos);
        self.refinement_cascade_tests.add(cascade_tests);
    }

    /// Records leader elections (distinct keys solved once and shared)
    /// against one of the memo tables.
    pub fn record_leader_elections(&self, table: MemoTableKind, n: u64) {
        match table {
            MemoTableKind::Full => self.leader_elections_full.add(n),
            MemoTableKind::Gcd => self.leader_elections_gcd.add(n),
        }
    }

    /// Records one batch's incremental split: pairs spliced straight
    /// from a warm memo entry vs pairs actually re-solved. Together the
    /// two sum to the batch's pair count.
    pub fn record_incremental(&self, spliced: u64, resolved: u64) {
        self.incremental_spliced.add(spliced);
        self.incremental_resolved.add(resolved);
    }

    /// Folds one parallel wave into the engine aggregates and, where a
    /// slot exists, the per-worker breakdown.
    pub fn record_wave(&self, wave: &WaveReport) {
        self.waves.inc();
        self.capacity_nanos
            .add(wave.wall_nanos.saturating_mul(wave.workers.len() as u64));
        for (i, w) in wave.workers.iter().enumerate() {
            self.tasks.add(w.tasks);
            self.busy_nanos.add(w.busy_nanos);
            self.queue_wait_nanos.add(w.queue_wait_nanos);
            if let Some(slot) = self.worker_slots.get(i) {
                slot.tasks.add(w.tasks);
                slot.busy_nanos.add(w.busy_nanos);
            }
        }
    }

    /// Records one built dependence graph: edge counts by kind (indexed
    /// like [`GRAPH_EDGE_LABELS`]), per-loop verdict counts, and the
    /// build wall time.
    pub fn record_graph(
        &self,
        edges_by_kind: [u64; 4],
        parallel: u64,
        sequential: u64,
        nanos: u64,
    ) {
        for (c, n) in self.graph_edges.iter().zip(edges_by_kind) {
            c.add(n);
        }
        self.graph_parallel_loops.add(parallel);
        self.graph_sequential_loops.add(sequential);
        self.graph_build_latency.record(nanos);
    }

    /// Latency summary for one cascade stage.
    pub fn stage_latency(&self, test: TestKind) -> crate::LatencySummary {
        self.stage_latency[test.index()].summary()
    }

    /// Verdict counts for one cascade stage, indexed by
    /// [`stage_verdict_index`].
    pub fn stage_verdicts(&self, test: TestKind) -> [u64; 4] {
        std::array::from_fn(|v| self.stage_verdicts[test.index()][v].get())
    }

    /// Latency summary of non-cached GCD solves.
    pub fn gcd_latency(&self) -> crate::LatencySummary {
        self.gcd_latency.summary()
    }

    /// GCD verdict counts, indexed by [`gcd_verdict_index`].
    pub fn gcd_verdicts(&self) -> [u64; 3] {
        std::array::from_fn(|v| self.gcd_verdicts[v].get())
    }

    /// GCD results served from the memo instead of solved.
    pub fn gcd_cache_hits(&self) -> u64 {
        self.gcd_cache_hits.get()
    }

    /// Latency summary of direction-vector refinements.
    pub fn refinement_latency(&self) -> crate::LatencySummary {
        self.refinement_latency.summary()
    }

    /// Total cascade tests issued by refinements.
    pub fn refinement_cascade_tests(&self) -> u64 {
        self.refinement_cascade_tests.get()
    }

    /// Parallel waves recorded.
    pub fn waves(&self) -> u64 {
        self.waves.get()
    }

    /// Items processed across all waves and workers.
    pub fn tasks(&self) -> u64 {
        self.tasks.get()
    }

    /// Nanoseconds workers spent inside mapped closures.
    pub fn busy_nanos(&self) -> u64 {
        self.busy_nanos.get()
    }

    /// Nanoseconds of wall time multiplied by participating workers.
    pub fn capacity_nanos(&self) -> u64 {
        self.capacity_nanos.get()
    }

    /// Nanoseconds workers spent waiting for their first item.
    pub fn queue_wait_nanos(&self) -> u64 {
        self.queue_wait_nanos.get()
    }

    /// Leader elections against one memo table.
    pub fn leader_elections(&self, table: MemoTableKind) -> u64 {
        match table {
            MemoTableKind::Full => self.leader_elections_full.get(),
            MemoTableKind::Gcd => self.leader_elections_gcd.get(),
        }
    }

    /// Pairs spliced from warm memo entries across all batches.
    pub fn incremental_spliced(&self) -> u64 {
        self.incremental_spliced.get()
    }

    /// Pairs actually re-solved across all batches.
    pub fn incremental_resolved(&self) -> u64 {
        self.incremental_resolved.get()
    }

    /// Dependence-graph edge counts by kind, indexed like
    /// [`GRAPH_EDGE_LABELS`].
    pub fn graph_edges(&self) -> [u64; 4] {
        std::array::from_fn(|k| self.graph_edges[k].get())
    }

    /// Loops judged parallel across all built graphs.
    pub fn graph_parallel_loops(&self) -> u64 {
        self.graph_parallel_loops.get()
    }

    /// Loops judged sequential across all built graphs.
    pub fn graph_sequential_loops(&self) -> u64 {
        self.graph_sequential_loops.get()
    }

    /// Latency summary of graph builds (count = graphs built).
    pub fn graph_build_latency(&self) -> crate::LatencySummary {
        self.graph_build_latency.summary()
    }

    /// Per-worker task counts (one entry per slot).
    pub fn worker_tasks(&self) -> Vec<u64> {
        self.worker_slots.iter().map(|s| s.tasks.get()).collect()
    }

    /// Per-worker busy nanoseconds (one entry per slot).
    pub fn worker_busy_nanos(&self) -> Vec<u64> {
        self.worker_slots
            .iter()
            .map(|s| s.busy_nanos.get())
            .collect()
    }

    /// Resets every counter and histogram (worker slot count is kept).
    pub fn clear(&self) {
        for h in &self.stage_latency {
            h.reset();
        }
        for row in &self.stage_verdicts {
            for c in row {
                c.reset();
            }
        }
        self.gcd_latency.reset();
        for c in &self.gcd_verdicts {
            c.reset();
        }
        self.gcd_cache_hits.reset();
        self.refinement_latency.reset();
        self.refinement_cascade_tests.reset();
        self.waves.reset();
        self.tasks.reset();
        self.busy_nanos.reset();
        self.capacity_nanos.reset();
        self.queue_wait_nanos.reset();
        self.leader_elections_full.reset();
        self.leader_elections_gcd.reset();
        self.incremental_spliced.reset();
        self.incremental_resolved.reset();
        for c in &self.graph_edges {
            c.reset();
        }
        self.graph_parallel_loops.reset();
        self.graph_sequential_loops.reset();
        self.graph_build_latency.reset();
        for slot in &self.worker_slots {
            slot.tasks.reset();
            slot.busy_nanos.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_recording_lands_in_the_right_cells() {
        let reg = MetricsRegistry::new();
        reg.record_stage(TestKind::Svpc, StageVerdict::Independent, 100);
        reg.record_stage(TestKind::Svpc, StageVerdict::Pass, 50);
        reg.record_stage(TestKind::FourierMotzkin, StageVerdict::Dependent, 900);
        assert_eq!(reg.stage_verdicts(TestKind::Svpc), [1, 0, 0, 1]);
        assert_eq!(reg.stage_verdicts(TestKind::FourierMotzkin), [0, 1, 0, 0]);
        assert_eq!(reg.stage_verdicts(TestKind::Acyclic), [0; 4]);
        assert_eq!(reg.stage_latency(TestKind::Svpc).count, 2);
        assert_eq!(reg.stage_latency(TestKind::Svpc).sum, 150);
    }

    #[test]
    fn cached_gcd_results_skip_the_latency_histogram() {
        let reg = MetricsRegistry::new();
        reg.record_gcd(GcdVerdict::Independent, false, 200);
        reg.record_gcd(GcdVerdict::Independent, true, 0);
        reg.record_gcd(GcdVerdict::Lattice, false, 300);
        assert_eq!(reg.gcd_verdicts(), [2, 1, 0]);
        assert_eq!(reg.gcd_cache_hits(), 1);
        assert_eq!(reg.gcd_latency().count, 2);
        assert_eq!(reg.gcd_latency().sum, 500);
    }

    #[test]
    fn wave_recording_aggregates_and_fills_slots() {
        let reg = MetricsRegistry::with_workers(2);
        reg.record_wave(&WaveReport {
            wall_nanos: 1000,
            workers: vec![
                WorkerWork {
                    tasks: 3,
                    busy_nanos: 700,
                    queue_wait_nanos: 10,
                },
                WorkerWork {
                    tasks: 1,
                    busy_nanos: 300,
                    queue_wait_nanos: 20,
                },
            ],
        });
        assert_eq!(reg.waves(), 1);
        assert_eq!(reg.tasks(), 4);
        assert_eq!(reg.busy_nanos(), 1000);
        assert_eq!(reg.capacity_nanos(), 2000);
        assert_eq!(reg.queue_wait_nanos(), 30);
        assert_eq!(reg.worker_tasks(), vec![3, 1]);
        assert_eq!(reg.worker_busy_nanos(), vec![700, 300]);
    }

    #[test]
    fn clear_resets_but_keeps_worker_slots() {
        let reg = MetricsRegistry::with_workers(3);
        reg.record_stage(TestKind::Acyclic, StageVerdict::Unknown, 5);
        reg.record_leader_elections(MemoTableKind::Full, 7);
        reg.record_graph([1, 0, 0, 0], 1, 0, 10);
        reg.clear();
        assert_eq!(reg.stage_verdicts(TestKind::Acyclic), [0; 4]);
        assert_eq!(reg.leader_elections(MemoTableKind::Full), 0);
        assert_eq!(reg.worker_slots(), 3);
        assert_eq!(reg.graph_edges(), [0; 4]);
        assert_eq!(reg.graph_build_latency().count, 0);
    }

    #[test]
    fn incremental_counters_accumulate_and_clear() {
        let reg = MetricsRegistry::new();
        reg.record_incremental(5, 2);
        reg.record_incremental(0, 3);
        assert_eq!(reg.incremental_spliced(), 5);
        assert_eq!(reg.incremental_resolved(), 5);
        reg.clear();
        assert_eq!(reg.incremental_spliced(), 0);
        assert_eq!(reg.incremental_resolved(), 0);
    }

    #[test]
    fn graph_recording_accumulates_by_kind() {
        let reg = MetricsRegistry::new();
        reg.record_graph([2, 1, 0, 0], 3, 1, 500);
        reg.record_graph([1, 0, 1, 0], 0, 2, 700);
        assert_eq!(reg.graph_edges(), [3, 1, 1, 0]);
        assert_eq!(reg.graph_parallel_loops(), 3);
        assert_eq!(reg.graph_sequential_loops(), 3);
        assert_eq!(reg.graph_build_latency().count, 2);
        assert_eq!(reg.graph_build_latency().sum, 1200);
    }
}
