//! Point-in-time metric snapshots and their Prometheus/JSON renderings.
//!
//! A [`MetricsSnapshot`] is assembled from three sources: the live
//! [`MetricsRegistry`] (stage/GCD/refinement/engine telemetry), the
//! authoritative [`AnalysisStats`] (pair outcomes), and the memo
//! tables' own counters. Keeping pair and memo figures out of the
//! registry means the rendered numbers are exactly the deterministic
//! ones the analyzer already reports, with telemetry layered alongside.
//!
//! [`AnalysisStats`]: dda_core::stats::AnalysisStats

use crate::metrics::LatencySummary;
use crate::registry::{
    MemoTableKind, MetricsRegistry, GCD_VERDICT_LABELS, GRAPH_EDGE_LABELS, STAGE_LABELS,
    STAGE_VERDICT_LABELS,
};
use dda_core::stats::AnalysisStats;
use dda_core::{MemoCounters, TestKind};
use std::fmt::Write as _;

/// One cascade stage's latency and verdict figures.
#[derive(Debug, Clone)]
pub struct StageSection {
    /// Stage token (`svpc`, `acyclic`, `residue`, `fm`).
    pub stage: &'static str,
    /// Latency summary of the stage's invocations.
    pub latency: LatencySummary,
    /// Verdict counts, indexed like [`STAGE_VERDICT_LABELS`].
    pub verdicts: [u64; 4],
}

/// GCD-phase figures.
#[derive(Debug, Clone)]
pub struct GcdSection {
    /// Latency summary of non-cached solves.
    pub latency: LatencySummary,
    /// Verdict counts, indexed like [`GCD_VERDICT_LABELS`].
    pub verdicts: [u64; 3],
    /// Results served from the GCD memo.
    pub cache_hits: u64,
}

/// Direction-vector refinement figures.
#[derive(Debug, Clone)]
pub struct RefinementSection {
    /// Latency summary of whole refinements.
    pub latency: LatencySummary,
    /// Total cascade tests issued during refinement.
    pub cascade_tests: u64,
}

/// Dependence-graph figures, present when at least one graph was
/// built.
#[derive(Debug, Clone)]
pub struct GraphSection {
    /// Edge counts by kind, indexed like [`GRAPH_EDGE_LABELS`].
    pub edges: [u64; 4],
    /// Loops judged parallel.
    pub parallel_loops: u64,
    /// Loops judged sequential.
    pub sequential_loops: u64,
    /// Latency summary of graph builds (count = graphs built).
    pub build_latency: LatencySummary,
}

/// Pair outcome figures, copied from the authoritative
/// [`AnalysisStats`].
#[derive(Debug, Clone)]
pub struct PairsSection {
    /// Reference pairs analyzed.
    pub pairs: u64,
    /// Pairs with constant subscripts (compared directly).
    pub constant: u64,
    /// Pairs where dependence was assumed (no test applied).
    pub assumed: u64,
    /// Pairs proven independent by the GCD test alone.
    pub gcd_independent: u64,
    /// Full-result memo queries (per-pair accounting).
    pub memo_queries: u64,
    /// Full-result memo hits (per-pair accounting).
    pub memo_hits: u64,
    /// GCD memo queries (per-pair accounting).
    pub gcd_memo_queries: u64,
    /// GCD memo hits (per-pair accounting).
    pub gcd_memo_hits: u64,
}

/// One memo table's traffic, plus the per-shard op spread for sharded
/// tables (empty for the serial analyzer's tables).
#[derive(Debug, Clone)]
pub struct MemoSection {
    /// Table label (`full` or `gcd`).
    pub table: &'static str,
    /// The table's own counters.
    pub counters: MemoCounters,
    /// Per-shard operation counts; empty when the table is unsharded.
    pub shard_ops: Vec<u64>,
}

/// Incremental re-analysis accounting: how many pairs were answered by
/// splicing a warm memo verdict versus actually re-solved.
#[derive(Debug, Clone, Default)]
pub struct IncrementalSection {
    /// Pairs whose verdict was spliced from a warm memo entry.
    pub spliced: u64,
    /// Pairs that were re-solved this session.
    pub resolved: u64,
}

/// Persisted-memo load figures, present when at least one memo file was
/// loaded.
#[derive(Debug, Clone, Default)]
pub struct MemoLoadSection {
    /// Memo files loaded (v2 text or v3 binary).
    pub files: u64,
    /// Records made available by those loads.
    pub records: u64,
    /// Bytes read or mapped.
    pub bytes: u64,
    /// Nanoseconds spent loading.
    pub nanos: u64,
    /// Records lazily faulted out of an attached v3 archive.
    pub archive_faults: u64,
}

/// Analysis-service figures (`dda serve`): request traffic, admission
/// control, and deadline outcomes.
#[derive(Debug, Clone, Default)]
pub struct ServiceSection {
    /// Requests currently being processed.
    pub in_flight: i64,
    /// Maximum concurrent requests before shedding.
    pub max_in_flight: u64,
    /// Requests accepted and answered.
    pub requests: u64,
    /// Requests shed (429) by admission control.
    pub shed: u64,
    /// Requests whose deadline expired (answered with partial results).
    pub deadline_exceeded: u64,
    /// Request counts split by `(endpoint, outcome)`, where outcome is
    /// one of `ok|shed|deadline|error`. When non-empty,
    /// `dda_serve_requests_total` is rendered as these labeled series
    /// (zero-count cells omitted) instead of one unlabeled sample.
    pub requests_by: Vec<(&'static str, &'static str, u64)>,
}

/// Engine worker-pool figures.
#[derive(Debug, Clone)]
pub struct EngineSection {
    /// Worker slots the engine was configured with.
    pub workers: u64,
    /// Parallel waves executed.
    pub waves: u64,
    /// Items processed across all waves.
    pub tasks: u64,
    /// Nanoseconds workers spent inside mapped closures.
    pub busy_nanos: u64,
    /// Wall nanoseconds × participating workers, summed over waves.
    pub capacity_nanos: u64,
    /// Nanoseconds workers waited before their first item.
    pub queue_wait_nanos: u64,
    /// Leader elections against the full-result table.
    pub leader_elections_full: u64,
    /// Leader elections against the GCD table.
    pub leader_elections_gcd: u64,
    /// Per-worker task counts.
    pub worker_tasks: Vec<u64>,
    /// Per-worker busy nanoseconds.
    pub worker_busy_nanos: Vec<u64>,
}

impl EngineSection {
    /// Fraction of pool capacity spent busy (`busy / capacity`), in
    /// `[0, 1]`; zero when no capacity was recorded.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        if self.capacity_nanos == 0 {
            0.0
        } else {
            self.busy_nanos as f64 / self.capacity_nanos as f64
        }
    }
}

/// A complete snapshot, ready to render as Prometheus text exposition
/// or JSON.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Per-stage figures, in cascade order.
    pub stages: Vec<StageSection>,
    /// GCD-phase figures.
    pub gcd: GcdSection,
    /// Refinement figures.
    pub refinement: RefinementSection,
    /// Dependence-graph figures, when at least one graph was built.
    pub graph: Option<GraphSection>,
    /// Pair outcomes, when attached via [`with_pairs`].
    ///
    /// [`with_pairs`]: MetricsSnapshot::with_pairs
    pub pairs: Option<PairsSection>,
    /// Memo tables, when attached via [`with_memo_table`].
    ///
    /// [`with_memo_table`]: MetricsSnapshot::with_memo_table
    pub memo: Vec<MemoSection>,
    /// Incremental re-analysis accounting, read from the registry.
    pub incremental: IncrementalSection,
    /// Persisted-memo load figures, when attached via [`with_memo_load`]
    /// and at least one file was loaded.
    ///
    /// [`with_memo_load`]: MetricsSnapshot::with_memo_load
    pub memo_load: Option<MemoLoadSection>,
    /// Engine figures, when the registry carries worker slots.
    pub engine: Option<EngineSection>,
    /// Service figures, when attached via [`with_service`].
    ///
    /// [`with_service`]: MetricsSnapshot::with_service
    pub service: Option<ServiceSection>,
}

impl MetricsSnapshot {
    /// Reads the registry into a snapshot. Engine figures are included
    /// when the registry has worker slots or recorded waves; pair and
    /// memo sections start empty and are attached with the `with_*`
    /// builders.
    #[must_use]
    pub fn from_registry(reg: &MetricsRegistry) -> Self {
        let stages = TestKind::ALL
            .iter()
            .map(|&t| StageSection {
                stage: STAGE_LABELS[t.index()],
                latency: reg.stage_latency(t),
                verdicts: reg.stage_verdicts(t),
            })
            .collect();
        let engine = if reg.worker_slots() > 0 || reg.waves() > 0 {
            Some(EngineSection {
                workers: reg.worker_slots() as u64,
                waves: reg.waves(),
                tasks: reg.tasks(),
                busy_nanos: reg.busy_nanos(),
                capacity_nanos: reg.capacity_nanos(),
                queue_wait_nanos: reg.queue_wait_nanos(),
                leader_elections_full: reg.leader_elections(MemoTableKind::Full),
                leader_elections_gcd: reg.leader_elections(MemoTableKind::Gcd),
                worker_tasks: reg.worker_tasks(),
                worker_busy_nanos: reg.worker_busy_nanos(),
            })
        } else {
            None
        };
        // Present only when a graph was actually built, so plain
        // analyze/batch expositions are unchanged.
        let build_latency = reg.graph_build_latency();
        let graph = (build_latency.count > 0).then(|| GraphSection {
            edges: reg.graph_edges(),
            parallel_loops: reg.graph_parallel_loops(),
            sequential_loops: reg.graph_sequential_loops(),
            build_latency,
        });
        MetricsSnapshot {
            stages,
            gcd: GcdSection {
                latency: reg.gcd_latency(),
                verdicts: reg.gcd_verdicts(),
                cache_hits: reg.gcd_cache_hits(),
            },
            refinement: RefinementSection {
                latency: reg.refinement_latency(),
                cascade_tests: reg.refinement_cascade_tests(),
            },
            graph,
            pairs: None,
            memo: Vec::new(),
            incremental: IncrementalSection {
                spliced: reg.incremental_spliced(),
                resolved: reg.incremental_resolved(),
            },
            memo_load: None,
            engine,
            service: None,
        }
    }

    /// Attaches pair outcomes from the authoritative stats.
    #[must_use]
    pub fn with_pairs(mut self, stats: &AnalysisStats) -> Self {
        self.pairs = Some(PairsSection {
            pairs: stats.pairs,
            constant: stats.constant,
            assumed: stats.assumed,
            gcd_independent: stats.gcd_independent,
            memo_queries: stats.memo_queries,
            memo_hits: stats.memo_hits,
            gcd_memo_queries: stats.gcd_memo_queries,
            gcd_memo_hits: stats.gcd_memo_hits,
        });
        self
    }

    /// Attaches one memo table's traffic. `shard_ops` is empty for
    /// unsharded tables.
    #[must_use]
    pub fn with_memo_table(
        mut self,
        table: &'static str,
        counters: MemoCounters,
        shard_ops: Vec<u64>,
    ) -> Self {
        self.memo.push(MemoSection {
            table,
            counters,
            shard_ops,
        });
        self
    }

    /// Attaches persisted-memo load figures. The section is rendered
    /// only when at least one file was loaded, so cold expositions are
    /// unchanged; calling this unconditionally is fine.
    #[must_use]
    pub fn with_memo_load(mut self, stats: dda_core::MemoLoadStats) -> Self {
        self.memo_load = (stats.files > 0).then_some(MemoLoadSection {
            files: stats.files,
            records: stats.records,
            bytes: stats.bytes,
            nanos: stats.nanos,
            archive_faults: stats.archive_faults,
        });
        self
    }

    /// Attaches service (request-handling) figures.
    #[must_use]
    pub fn with_service(mut self, service: ServiceSection) -> Self {
        self.service = Some(service);
        self
    }

    /// Renders the snapshot in Prometheus text exposition format
    /// (`# HELP`/`# TYPE` headers, summaries with
    /// `quantile="0.5|0.9|0.99"` samples plus `_sum`/`_count`).
    #[must_use]
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();

        // --- cascade stages -------------------------------------------------
        header(
            &mut out,
            "dda_stage_latency_nanos",
            "summary",
            "Cascade stage latency in nanoseconds.",
        );
        for s in &self.stages {
            summary(
                &mut out,
                "dda_stage_latency_nanos",
                &[("stage", s.stage)],
                s.latency,
            );
        }
        header(
            &mut out,
            "dda_stage_verdicts_total",
            "counter",
            "Cascade stage outcomes by verdict.",
        );
        for s in &self.stages {
            for (v, &count) in s.verdicts.iter().enumerate() {
                sample(
                    &mut out,
                    "dda_stage_verdicts_total",
                    &[("stage", s.stage), ("verdict", STAGE_VERDICT_LABELS[v])],
                    count,
                );
            }
        }

        // --- GCD phase ------------------------------------------------------
        header(
            &mut out,
            "dda_gcd_latency_nanos",
            "summary",
            "Extended GCD solve latency in nanoseconds (non-cached).",
        );
        summary(&mut out, "dda_gcd_latency_nanos", &[], self.gcd.latency);
        header(
            &mut out,
            "dda_gcd_verdicts_total",
            "counter",
            "Extended GCD outcomes by verdict.",
        );
        for (v, &count) in self.gcd.verdicts.iter().enumerate() {
            sample(
                &mut out,
                "dda_gcd_verdicts_total",
                &[("verdict", GCD_VERDICT_LABELS[v])],
                count,
            );
        }
        header(
            &mut out,
            "dda_gcd_cache_hits_total",
            "counter",
            "GCD results served from the no-bounds memo.",
        );
        sample(
            &mut out,
            "dda_gcd_cache_hits_total",
            &[],
            self.gcd.cache_hits,
        );

        // --- refinement -----------------------------------------------------
        header(
            &mut out,
            "dda_refinement_latency_nanos",
            "summary",
            "Direction-vector refinement latency in nanoseconds.",
        );
        summary(
            &mut out,
            "dda_refinement_latency_nanos",
            &[],
            self.refinement.latency,
        );
        header(
            &mut out,
            "dda_refinement_cascade_tests_total",
            "counter",
            "Cascade tests issued during direction-vector refinement.",
        );
        sample(
            &mut out,
            "dda_refinement_cascade_tests_total",
            &[],
            self.refinement.cascade_tests,
        );

        // --- dependence graph -----------------------------------------------
        if let Some(g) = &self.graph {
            header(
                &mut out,
                "dda_graph_edges_total",
                "counter",
                "Dependence-graph edges by kind.",
            );
            for (k, &count) in g.edges.iter().enumerate() {
                sample(
                    &mut out,
                    "dda_graph_edges_total",
                    &[("kind", GRAPH_EDGE_LABELS[k])],
                    count,
                );
            }
            for (name, help, value) in [
                (
                    "dda_graph_parallel_loops_total",
                    "Loops judged parallel (no carried dependence).",
                    g.parallel_loops,
                ),
                (
                    "dda_graph_sequential_loops_total",
                    "Loops judged sequential (some carried dependence).",
                    g.sequential_loops,
                ),
            ] {
                header(&mut out, name, "counter", help);
                sample(&mut out, name, &[], value);
            }
            header(
                &mut out,
                "dda_graph_build_latency_nanos",
                "summary",
                "Dependence-graph build latency in nanoseconds.",
            );
            summary(
                &mut out,
                "dda_graph_build_latency_nanos",
                &[],
                g.build_latency,
            );
        }

        // --- pairs ----------------------------------------------------------
        if let Some(p) = &self.pairs {
            for (name, help, value) in [
                ("dda_pairs_total", "Reference pairs analyzed.", p.pairs),
                (
                    "dda_pairs_constant_total",
                    "Pairs with constant subscripts.",
                    p.constant,
                ),
                (
                    "dda_pairs_assumed_total",
                    "Pairs where dependence was assumed.",
                    p.assumed,
                ),
                (
                    "dda_pairs_gcd_independent_total",
                    "Pairs proven independent by the GCD test alone.",
                    p.gcd_independent,
                ),
            ] {
                header(&mut out, name, "counter", help);
                sample(&mut out, name, &[], value);
            }
            header(
                &mut out,
                "dda_pair_memo_queries_total",
                "counter",
                "Per-pair memo queries, as counted by AnalysisStats.",
            );
            sample(
                &mut out,
                "dda_pair_memo_queries_total",
                &[("table", "full")],
                p.memo_queries,
            );
            sample(
                &mut out,
                "dda_pair_memo_queries_total",
                &[("table", "gcd")],
                p.gcd_memo_queries,
            );
            header(
                &mut out,
                "dda_pair_memo_hits_total",
                "counter",
                "Per-pair memo hits, as counted by AnalysisStats.",
            );
            sample(
                &mut out,
                "dda_pair_memo_hits_total",
                &[("table", "full")],
                p.memo_hits,
            );
            sample(
                &mut out,
                "dda_pair_memo_hits_total",
                &[("table", "gcd")],
                p.gcd_memo_hits,
            );
        }

        // --- memo tables ----------------------------------------------------
        if !self.memo.is_empty() {
            header(
                &mut out,
                "dda_memo_queries_total",
                "counter",
                "Memo table lookups (table traffic).",
            );
            for m in &self.memo {
                sample(
                    &mut out,
                    "dda_memo_queries_total",
                    &[("table", m.table)],
                    m.counters.queries,
                );
            }
            header(
                &mut out,
                "dda_memo_hits_total",
                "counter",
                "Memo table hits.",
            );
            for m in &self.memo {
                sample(
                    &mut out,
                    "dda_memo_hits_total",
                    &[("table", m.table)],
                    m.counters.hits,
                );
            }
            header(
                &mut out,
                "dda_memo_misses_total",
                "counter",
                "Memo table misses.",
            );
            for m in &self.memo {
                sample(
                    &mut out,
                    "dda_memo_misses_total",
                    &[("table", m.table)],
                    m.counters.misses(),
                );
            }
            header(
                &mut out,
                "dda_memo_warm_loads_total",
                "counter",
                "Entries loaded from a persisted memo file.",
            );
            for m in &self.memo {
                sample(
                    &mut out,
                    "dda_memo_warm_loads_total",
                    &[("table", m.table)],
                    m.counters.warm_loads,
                );
            }
            header(
                &mut out,
                "dda_memo_entries",
                "gauge",
                "Distinct entries currently stored.",
            );
            for m in &self.memo {
                sample(
                    &mut out,
                    "dda_memo_entries",
                    &[("table", m.table)],
                    m.counters.entries,
                );
            }
            header(
                &mut out,
                "dda_memo_bytes",
                "gauge",
                "Estimated bytes held by stored entries.",
            );
            for m in &self.memo {
                sample(
                    &mut out,
                    "dda_memo_bytes",
                    &[("table", m.table)],
                    m.counters.bytes,
                );
            }
            header(
                &mut out,
                "dda_memo_capacity_bytes",
                "gauge",
                "Configured byte capacity (0 = unbounded).",
            );
            for m in &self.memo {
                sample(
                    &mut out,
                    "dda_memo_capacity_bytes",
                    &[("table", m.table)],
                    m.counters.capacity_bytes,
                );
            }
            header(
                &mut out,
                "dda_memo_evictions_total",
                "counter",
                "Entries evicted to stay under the byte capacity.",
            );
            for m in &self.memo {
                sample(
                    &mut out,
                    "dda_memo_evictions_total",
                    &[("table", m.table)],
                    m.counters.evictions,
                );
            }
            if self.memo.iter().any(|m| !m.shard_ops.is_empty()) {
                header(
                    &mut out,
                    "dda_memo_shard_ops_total",
                    "counter",
                    "Operations (gets + inserts) per memo shard.",
                );
                for m in &self.memo {
                    for (i, &ops) in m.shard_ops.iter().enumerate() {
                        let shard = i.to_string();
                        sample(
                            &mut out,
                            "dda_memo_shard_ops_total",
                            &[("table", m.table), ("shard", &shard)],
                            ops,
                        );
                    }
                }
            }
        }

        // --- incremental re-analysis ----------------------------------------
        for (name, help, value) in [
            (
                "dda_incremental_spliced_total",
                "Pairs whose verdict was spliced from a warm memo entry.",
                self.incremental.spliced,
            ),
            (
                "dda_incremental_resolved_total",
                "Pairs re-solved this session (not spliced).",
                self.incremental.resolved,
            ),
        ] {
            header(&mut out, name, "counter", help);
            sample(&mut out, name, &[], value);
        }

        // --- persisted-memo loads -------------------------------------------
        if let Some(l) = &self.memo_load {
            for (name, help, value) in [
                (
                    "dda_memo_load_files_total",
                    "Memo files loaded (v2 text or v3 binary).",
                    l.files,
                ),
                (
                    "dda_memo_load_records_total",
                    "Records made available by memo file loads.",
                    l.records,
                ),
                (
                    "dda_memo_load_bytes_total",
                    "Bytes read or mapped while loading memo files.",
                    l.bytes,
                ),
                (
                    "dda_memo_load_nanos_total",
                    "Nanoseconds spent loading memo files.",
                    l.nanos,
                ),
                (
                    "dda_memo_archive_faults_total",
                    "Records lazily faulted out of an attached v3 archive.",
                    l.archive_faults,
                ),
            ] {
                header(&mut out, name, "counter", help);
                sample(&mut out, name, &[], value);
            }
        }

        // --- service --------------------------------------------------------
        if let Some(sv) = &self.service {
            let _ = writeln!(
                out,
                "# HELP dda_serve_in_flight_requests Requests currently being processed."
            );
            let _ = writeln!(out, "# TYPE dda_serve_in_flight_requests gauge");
            let _ = writeln!(out, "dda_serve_in_flight_requests {}", sv.in_flight);
            header(
                &mut out,
                "dda_serve_max_in_flight_requests",
                "gauge",
                "Maximum concurrent requests before shedding.",
            );
            sample(
                &mut out,
                "dda_serve_max_in_flight_requests",
                &[],
                sv.max_in_flight,
            );
            header(
                &mut out,
                "dda_serve_requests_total",
                "counter",
                "Requests accepted and answered, by endpoint and outcome.",
            );
            if sv.requests_by.is_empty() {
                sample(&mut out, "dda_serve_requests_total", &[], sv.requests);
            } else {
                for &(endpoint, outcome, count) in &sv.requests_by {
                    sample(
                        &mut out,
                        "dda_serve_requests_total",
                        &[("endpoint", endpoint), ("outcome", outcome)],
                        count,
                    );
                }
            }
            for (name, help, value) in [
                (
                    "dda_serve_shed_total",
                    "Requests shed (429) by admission control.",
                    sv.shed,
                ),
                (
                    "dda_serve_deadline_exceeded_total",
                    "Requests whose deadline expired before analysis finished.",
                    sv.deadline_exceeded,
                ),
            ] {
                header(&mut out, name, "counter", help);
                sample(&mut out, name, &[], value);
            }
        }

        // --- engine ---------------------------------------------------------
        if let Some(e) = &self.engine {
            header(
                &mut out,
                "dda_engine_workers",
                "gauge",
                "Worker slots the engine was configured with.",
            );
            sample(&mut out, "dda_engine_workers", &[], e.workers);
            for (name, help, value) in [
                (
                    "dda_engine_waves_total",
                    "Parallel waves executed.",
                    e.waves,
                ),
                (
                    "dda_engine_tasks_total",
                    "Items processed across all waves.",
                    e.tasks,
                ),
                (
                    "dda_engine_busy_nanos_total",
                    "Nanoseconds workers spent inside mapped closures.",
                    e.busy_nanos,
                ),
                (
                    "dda_engine_capacity_nanos_total",
                    "Wall nanoseconds times participating workers.",
                    e.capacity_nanos,
                ),
                (
                    "dda_engine_queue_wait_nanos_total",
                    "Nanoseconds workers waited before their first item.",
                    e.queue_wait_nanos,
                ),
            ] {
                header(&mut out, name, "counter", help);
                sample(&mut out, name, &[], value);
            }
            let _ = writeln!(
                out,
                "# HELP dda_engine_utilization_ratio Busy time over pool capacity, 0 to 1."
            );
            let _ = writeln!(out, "# TYPE dda_engine_utilization_ratio gauge");
            let _ = writeln!(out, "dda_engine_utilization_ratio {}", e.utilization());
            header(
                &mut out,
                "dda_engine_leader_elections_total",
                "counter",
                "Distinct keys elected a solving leader, by memo table.",
            );
            sample(
                &mut out,
                "dda_engine_leader_elections_total",
                &[("table", "full")],
                e.leader_elections_full,
            );
            sample(
                &mut out,
                "dda_engine_leader_elections_total",
                &[("table", "gcd")],
                e.leader_elections_gcd,
            );
            if !e.worker_tasks.is_empty() {
                header(
                    &mut out,
                    "dda_engine_worker_tasks_total",
                    "counter",
                    "Items processed per worker slot.",
                );
                for (i, &t) in e.worker_tasks.iter().enumerate() {
                    let w = i.to_string();
                    sample(
                        &mut out,
                        "dda_engine_worker_tasks_total",
                        &[("worker", &w)],
                        t,
                    );
                }
                header(
                    &mut out,
                    "dda_engine_worker_busy_nanos_total",
                    "counter",
                    "Busy nanoseconds per worker slot.",
                );
                for (i, &b) in e.worker_busy_nanos.iter().enumerate() {
                    let w = i.to_string();
                    sample(
                        &mut out,
                        "dda_engine_worker_busy_nanos_total",
                        &[("worker", &w)],
                        b,
                    );
                }
            }
        }
        out
    }

    /// Renders the snapshot as a single JSON object with deterministic
    /// key order.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"stages\":[");
        for (i, s) in self.stages.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"stage\":\"{}\",{},\"verdicts\":{{",
                s.stage,
                latency_json(s.latency)
            );
            for (v, &count) in s.verdicts.iter().enumerate() {
                if v > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", STAGE_VERDICT_LABELS[v], count);
            }
            out.push_str("}}");
        }
        out.push_str("],\"gcd\":{");
        let _ = write!(out, "{},\"verdicts\":{{", latency_json(self.gcd.latency));
        for (v, &count) in self.gcd.verdicts.iter().enumerate() {
            if v > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", GCD_VERDICT_LABELS[v], count);
        }
        let _ = write!(out, "}},\"cache_hits\":{}}}", self.gcd.cache_hits);
        let _ = write!(
            out,
            ",\"refinement\":{{{},\"cascade_tests\":{}}}",
            latency_json(self.refinement.latency),
            self.refinement.cascade_tests
        );
        if let Some(g) = &self.graph {
            let _ = write!(out, ",\"graph\":{{\"edges\":{{");
            for (k, &count) in g.edges.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", GRAPH_EDGE_LABELS[k], count);
            }
            let _ = write!(
                out,
                "}},\"parallel_loops\":{},\"sequential_loops\":{},{}}}",
                g.parallel_loops,
                g.sequential_loops,
                latency_json(g.build_latency).replacen("\"latency\"", "\"build_latency\"", 1)
            );
        }
        if let Some(p) = &self.pairs {
            let _ = write!(
                out,
                ",\"pairs\":{{\"pairs\":{},\"constant\":{},\"assumed\":{},\
                 \"gcd_independent\":{},\"memo_queries\":{},\"memo_hits\":{},\
                 \"gcd_memo_queries\":{},\"gcd_memo_hits\":{}}}",
                p.pairs,
                p.constant,
                p.assumed,
                p.gcd_independent,
                p.memo_queries,
                p.memo_hits,
                p.gcd_memo_queries,
                p.gcd_memo_hits
            );
        }
        if !self.memo.is_empty() {
            out.push_str(",\"memo\":[");
            for (i, m) in self.memo.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"table\":\"{}\",\"queries\":{},\"hits\":{},\"misses\":{},\
                     \"warm_loads\":{},\"entries\":{},\"bytes\":{},\"evictions\":{},\
                     \"capacity_bytes\":{},\"shard_ops\":[",
                    m.table,
                    m.counters.queries,
                    m.counters.hits,
                    m.counters.misses(),
                    m.counters.warm_loads,
                    m.counters.entries,
                    m.counters.bytes,
                    m.counters.evictions,
                    m.counters.capacity_bytes
                );
                for (j, &ops) in m.shard_ops.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{ops}");
                }
                out.push_str("]}");
            }
            out.push(']');
        }
        let _ = write!(
            out,
            ",\"incremental\":{{\"spliced\":{},\"resolved\":{}}}",
            self.incremental.spliced, self.incremental.resolved
        );
        if let Some(l) = &self.memo_load {
            let _ = write!(
                out,
                ",\"memo_load\":{{\"files\":{},\"records\":{},\"bytes\":{},\
                 \"nanos\":{},\"archive_faults\":{}}}",
                l.files, l.records, l.bytes, l.nanos, l.archive_faults
            );
        }
        if let Some(sv) = &self.service {
            let _ = write!(
                out,
                ",\"service\":{{\"in_flight\":{},\"max_in_flight\":{},\"requests\":{},\
                 \"shed\":{},\"deadline_exceeded\":{}",
                sv.in_flight, sv.max_in_flight, sv.requests, sv.shed, sv.deadline_exceeded
            );
            if !sv.requests_by.is_empty() {
                out.push_str(",\"requests_by\":[");
                for (i, &(endpoint, outcome, count)) in sv.requests_by.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{{\"endpoint\":\"{endpoint}\",\"outcome\":\"{outcome}\",\"count\":{count}}}"
                    );
                }
                out.push(']');
            }
            out.push('}');
        }
        if let Some(e) = &self.engine {
            let _ = write!(
                out,
                ",\"engine\":{{\"workers\":{},\"waves\":{},\"tasks\":{},\
                 \"busy_nanos\":{},\"capacity_nanos\":{},\"queue_wait_nanos\":{},\
                 \"utilization\":{},\"leader_elections\":{{\"full\":{},\"gcd\":{}}},\
                 \"worker_tasks\":[",
                e.workers,
                e.waves,
                e.tasks,
                e.busy_nanos,
                e.capacity_nanos,
                e.queue_wait_nanos,
                e.utilization(),
                e.leader_elections_full,
                e.leader_elections_gcd
            );
            for (i, &t) in e.worker_tasks.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{t}");
            }
            out.push_str("],\"worker_busy_nanos\":[");
            for (i, &b) in e.worker_busy_nanos.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push('}');
        out
    }
}

fn latency_json(l: LatencySummary) -> String {
    // Empty histograms have no percentiles (the documented sentinel);
    // JSON has no NaN, so they render as `null`.
    let q = |v: Option<u64>| v.map_or_else(|| "null".to_string(), |v| v.to_string());
    format!(
        "\"latency\":{{\"count\":{},\"sum_nanos\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}",
        l.count,
        l.sum,
        q(l.p50),
        q(l.p90),
        q(l.p99)
    )
}

fn header(out: &mut String, name: &str, kind: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn labels_str(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", inner.join(","))
}

fn sample(out: &mut String, name: &str, labels: &[(&str, &str)], value: u64) {
    let _ = writeln!(out, "{name}{} {value}", labels_str(labels));
}

fn summary(out: &mut String, name: &str, labels: &[(&str, &str)], l: LatencySummary) {
    // Quantile samples are omitted entirely for empty histograms —
    // the sentinel is "absent", which keeps the exposition free of
    // non-finite values (our own `prom::parse_exposition` rejects
    // them) and of fabricated zeros.
    for (q, v) in [("0.5", l.p50), ("0.9", l.p90), ("0.99", l.p99)] {
        if let Some(v) = v {
            let mut with_q: Vec<(&str, &str)> = labels.to_vec();
            with_q.push(("quantile", q));
            let _ = writeln!(out, "{name}{} {v}", labels_str(&with_q));
        }
    }
    let _ = writeln!(out, "{name}_sum{} {}", labels_str(labels), l.sum);
    let _ = writeln!(out, "{name}_count{} {}", labels_str(labels), l.count);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_core::pipeline::StageVerdict;

    fn sample_snapshot() -> MetricsSnapshot {
        let reg = MetricsRegistry::with_workers(2);
        reg.record_stage(TestKind::Svpc, StageVerdict::Independent, 100);
        reg.record_gcd(dda_core::pipeline::GcdVerdict::Lattice, false, 50);
        reg.record_incremental(5, 11);
        MetricsSnapshot::from_registry(&reg)
            .with_pairs(&AnalysisStats::default())
            .with_memo_load(dda_core::MemoLoadStats {
                files: 1,
                records: 16,
                bytes: 4096,
                nanos: 777,
                archive_faults: 3,
            })
            .with_memo_table(
                "full",
                MemoCounters {
                    queries: 10,
                    hits: 4,
                    warm_loads: 2,
                    entries: 6,
                    bytes: 2048,
                    evictions: 3,
                    capacity_bytes: 4096,
                },
                vec![7, 9],
            )
            .with_service(ServiceSection {
                in_flight: 1,
                max_in_flight: 8,
                requests: 12,
                shed: 2,
                deadline_exceeded: 1,
                requests_by: vec![
                    ("/analyze", "ok", 9),
                    ("/analyze", "deadline", 1),
                    ("(accept)", "shed", 2),
                ],
            })
    }

    #[test]
    fn prometheus_exposition_has_expected_shape() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE dda_stage_latency_nanos summary"));
        assert!(text.contains("dda_stage_latency_nanos{stage=\"svpc\",quantile=\"0.5\"}"));
        assert!(text.contains("dda_stage_latency_nanos_count{stage=\"svpc\"} 1"));
        assert!(text.contains("dda_stage_verdicts_total{stage=\"svpc\",verdict=\"independent\"} 1"));
        assert!(text.contains("dda_memo_hits_total{table=\"full\"} 4"));
        assert!(text.contains("dda_memo_misses_total{table=\"full\"} 6"));
        assert!(text.contains("dda_memo_warm_loads_total{table=\"full\"} 2"));
        assert!(text.contains("# TYPE dda_memo_entries gauge"));
        assert!(text.contains("# TYPE dda_memo_bytes gauge"));
        assert!(text.contains("dda_memo_bytes{table=\"full\"} 2048"));
        assert!(text.contains("# TYPE dda_memo_capacity_bytes gauge"));
        assert!(text.contains("dda_memo_capacity_bytes{table=\"full\"} 4096"));
        assert!(text.contains("dda_memo_evictions_total{table=\"full\"} 3"));
        assert!(text.contains("# TYPE dda_serve_in_flight_requests gauge"));
        assert!(text.contains("dda_serve_in_flight_requests 1"));
        assert!(text.contains("dda_serve_shed_total 2"));
        assert!(text.contains("dda_serve_deadline_exceeded_total 1"));
        // The outcome split replaces the unlabeled requests sample.
        assert!(text.contains("dda_serve_requests_total{endpoint=\"/analyze\",outcome=\"ok\"} 9"));
        assert!(text.contains("dda_serve_requests_total{endpoint=\"(accept)\",outcome=\"shed\"} 2"));
        assert!(!text.contains("dda_serve_requests_total 12"));
        assert!(text.contains("dda_memo_shard_ops_total{table=\"full\",shard=\"1\"} 9"));
        assert!(text.contains("dda_incremental_spliced_total 5"));
        assert!(text.contains("dda_incremental_resolved_total 11"));
        assert!(text.contains("dda_memo_load_files_total 1"));
        assert!(text.contains("dda_memo_load_records_total 16"));
        assert!(text.contains("dda_memo_load_bytes_total 4096"));
        assert!(text.contains("dda_memo_load_nanos_total 777"));
        assert!(text.contains("dda_memo_archive_faults_total 3"));
        assert!(text.contains("dda_engine_workers 2"));
        assert!(text.contains("# TYPE dda_engine_utilization_ratio gauge"));
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            assert_eq!(
                line.split_whitespace().count(),
                2,
                "bad sample line: {line}"
            );
        }
    }

    #[test]
    fn json_rendering_is_an_object_with_sections() {
        let json = sample_snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"stages\":",
            "\"gcd\":",
            "\"refinement\":",
            "\"pairs\":",
            "\"memo\":",
            "\"engine\":",
            "\"shard_ops\":[7,9]",
            "\"bytes\":2048",
            "\"evictions\":3",
            "\"capacity_bytes\":4096",
            "\"incremental\":{\"spliced\":5,\"resolved\":11}",
            "\"memo_load\":{\"files\":1,\"records\":16,\"bytes\":4096,\"nanos\":777,\"archive_faults\":3}",
            "\"service\":{\"in_flight\":1,\"max_in_flight\":8,\"requests\":12,\"shed\":2,\"deadline_exceeded\":1,\"requests_by\":[{\"endpoint\":\"/analyze\",\"outcome\":\"ok\",\"count\":9}",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn memo_load_section_appears_only_after_a_load() {
        let reg = MetricsRegistry::new();
        let snap =
            MetricsSnapshot::from_registry(&reg).with_memo_load(dda_core::MemoLoadStats::default());
        assert!(snap.memo_load.is_none());
        assert!(!snap.to_prometheus().contains("dda_memo_load_"));
        assert!(!snap.to_json().contains("\"memo_load\":"));
        // The incremental section is always present, even when zero.
        assert!(snap
            .to_prometheus()
            .contains("dda_incremental_spliced_total 0"));
        assert!(snap
            .to_json()
            .contains("\"incremental\":{\"spliced\":0,\"resolved\":0}"));
    }

    #[test]
    fn graph_section_appears_only_after_a_build() {
        let reg = MetricsRegistry::new();
        let without = MetricsSnapshot::from_registry(&reg);
        assert!(without.graph.is_none());
        assert!(!without.to_prometheus().contains("dda_graph_"));
        assert!(!without.to_json().contains("\"graph\":"));

        reg.record_graph([3, 1, 2, 0], 4, 2, 1500);
        let with = MetricsSnapshot::from_registry(&reg);
        let text = with.to_prometheus();
        assert!(text.contains("# TYPE dda_graph_edges_total counter"));
        assert!(text.contains("dda_graph_edges_total{kind=\"flow\"} 3"));
        assert!(text.contains("dda_graph_edges_total{kind=\"anti\"} 1"));
        assert!(text.contains("dda_graph_edges_total{kind=\"output\"} 2"));
        assert!(text.contains("dda_graph_parallel_loops_total 4"));
        assert!(text.contains("dda_graph_sequential_loops_total 2"));
        assert!(text.contains("dda_graph_build_latency_nanos_count 1"));
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            assert_eq!(
                line.split_whitespace().count(),
                2,
                "bad sample line: {line}"
            );
        }
        let json = with.to_json();
        assert!(json.contains("\"graph\":{\"edges\":{\"flow\":3,\"anti\":1,\"output\":2,\"input\":0},\"parallel_loops\":4,\"sequential_loops\":2,\"build_latency\":"));
    }

    #[test]
    fn serial_snapshot_omits_engine_section() {
        let reg = MetricsRegistry::new();
        let snap = MetricsSnapshot::from_registry(&reg);
        assert!(snap.engine.is_none());
        let text = snap.to_prometheus();
        assert!(!text.contains("dda_engine_"));
        assert!(!snap.to_json().contains("\"engine\":"));
    }
}
