//! Hierarchical span recording: analyze → pair → stage.
//!
//! The recorder is itself a [`Probe`]: it rebuilds the analysis
//! hierarchy from the trace-event stream and assigns every span a
//! monotonic sequence number. Durations come exclusively from the
//! per-phase `nanos` the events already carry — there are **no
//! wall-clock timestamps anywhere**, by design: two runs over the same
//! input produce structurally identical profiles (same spans, same
//! seqs, same nesting), differing only in measured durations.
//!
//! Output comes in two shapes: one JSON object per span
//! ([`SpanRecorder::to_jsonl`]) and the folded-stack format consumed by
//! `flamegraph.pl` / speedscope ([`SpanRecorder::to_folded`]).

use dda_core::pipeline::{Probe, TraceEvent, TraceId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One recorded span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Monotonic sequence number, assigned when the span opens.
    pub seq: u64,
    /// Sequence number of the parent span, if any.
    pub parent: Option<u64>,
    /// Nesting depth (roots are 0).
    pub depth: usize,
    /// Span name, e.g. `analyze:foo.loop`, `pair:a#0-1`, `stage:svpc`.
    pub name: String,
    /// Duration in nanoseconds. Leaves carry the event's measured
    /// duration; containers carry the sum of their children.
    pub nanos: u64,
}

#[derive(Debug)]
struct Node {
    span: Span,
    has_children: bool,
}

/// Rebuilds the analyze → pair → stage hierarchy from trace events.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    nodes: Vec<Node>,
    /// Indices into `nodes` of the currently open spans, root first.
    stack: Vec<usize>,
    next_seq: u64,
    trace: Option<TraceId>,
}

impl SpanRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty recorder whose output is stamped with a
    /// request trace id: every [`to_jsonl`](Self::to_jsonl) line gains
    /// a `"trace"` field, so captured profiles correlate with service
    /// logs and the flight recorder.
    pub fn with_trace(trace: TraceId) -> Self {
        SpanRecorder {
            trace: Some(trace),
            ..Self::default()
        }
    }

    fn open(&mut self, name: String) -> usize {
        let parent = self.stack.last().copied();
        if let Some(p) = parent {
            self.nodes[p].has_children = true;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.nodes.len();
        self.nodes.push(Node {
            span: Span {
                seq,
                parent: parent.map(|p| self.nodes[p].span.seq),
                depth: self.stack.len(),
                name,
                nanos: 0,
            },
            has_children: false,
        });
        self.stack.push(idx);
        idx
    }

    /// Adds a leaf child under the current top of stack.
    fn leaf(&mut self, name: String, nanos: u64) {
        let idx = self.open(name);
        self.nodes[idx].span.nanos = nanos;
        self.stack.pop();
        // Containers accumulate the sum of their children.
        for &anc in &self.stack {
            self.nodes[anc].span.nanos += nanos;
        }
    }

    /// Pops open spans until the stack is `depth` deep.
    fn close_to(&mut self, depth: usize) {
        while self.stack.len() > depth {
            self.stack.pop();
        }
    }

    /// Opens a new program root span named `analyze:<label>`, closing
    /// anything still open from a previous program.
    pub fn begin_program(&mut self, label: &str) {
        self.close_to(0);
        self.open(format!("analyze:{label}"));
    }

    fn ensure_root(&mut self) {
        if self.stack.is_empty() {
            self.open("analyze".to_string());
        }
    }

    /// Closes all open spans. Call once the event stream is done.
    pub fn finish(&mut self) {
        self.close_to(0);
    }

    /// All spans recorded so far, in sequence order.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.nodes.iter().map(|n| &n.span)
    }

    /// Renders one JSON object per span, in sequence order.
    ///
    /// Fields: `seq`, `parent` (null for roots), `depth`, `name`,
    /// `nanos`, plus `trace` when the recorder carries a trace id. No
    /// timestamps, by design (see module docs).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let trace = self
            .trace
            .map_or(String::new(), |t| format!("\"trace\":\"{t}\","));
        for node in &self.nodes {
            let s = &node.span;
            let parent = s.parent.map_or("null".to_string(), |p| p.to_string());
            let _ = writeln!(
                out,
                "{{{trace}\"seq\":{},\"parent\":{parent},\"depth\":{},\"name\":\"{}\",\"nanos\":{}}}",
                s.seq,
                s.depth,
                json_escape(&s.name),
                s.nanos
            );
        }
        out
    }

    /// Renders flamegraph-compatible folded stacks: one
    /// `root;child;leaf <nanos>` line per distinct leaf stack,
    /// aggregated and sorted for determinism.
    pub fn to_folded(&self) -> String {
        // seq -> index, to walk parent chains.
        let by_seq: BTreeMap<u64, usize> = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.span.seq, i))
            .collect();
        let mut folded: BTreeMap<String, u64> = BTreeMap::new();
        for node in self.nodes.iter().filter(|n| !n.has_children) {
            let mut frames = vec![node.span.name.as_str()];
            let mut cur = node.span.parent;
            while let Some(pseq) = cur {
                let pnode = &self.nodes[by_seq[&pseq]];
                frames.push(pnode.span.name.as_str());
                cur = pnode.span.parent;
            }
            frames.reverse();
            *folded.entry(frames.join(";")).or_insert(0) += node.span.nanos;
        }
        let mut out = String::new();
        for (stack, nanos) in folded {
            let _ = writeln!(out, "{stack} {nanos}");
        }
        out
    }
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Probe for SpanRecorder {
    fn record(&mut self, event: TraceEvent) {
        match event {
            TraceEvent::PairStarted {
                array,
                a_access,
                b_access,
                ..
            } => {
                self.ensure_root();
                // A pair can only nest directly under the program root.
                self.close_to(1);
                self.open(format!("pair:{array}#{a_access}-{b_access}"));
            }
            TraceEvent::Gcd { nanos, .. } => {
                self.ensure_root();
                self.leaf("gcd".to_string(), nanos);
            }
            TraceEvent::Stage { test, nanos, .. } => {
                self.ensure_root();
                let token = crate::registry::STAGE_LABELS[test.index()];
                self.leaf(format!("stage:{token}"), nanos);
            }
            TraceEvent::RefinementStarted => {
                self.ensure_root();
                self.open("refinement".to_string());
            }
            TraceEvent::Directions { nanos, .. } => {
                // Close the refinement container (if one is open) and
                // book the portion of the refinement wall time not
                // already attributed to its cascade stages.
                if let Some(&top) = self.stack.last() {
                    if self.nodes[top].span.name == "refinement" {
                        let attributed = self.nodes[top].span.nanos;
                        let overhead = nanos.saturating_sub(attributed);
                        if overhead > 0 || !self.nodes[top].has_children {
                            self.leaf("directions".to_string(), overhead);
                        }
                        self.stack.pop();
                    }
                }
            }
            TraceEvent::PairFinished { .. } => {
                // Close everything down to the pair, then the pair.
                self.close_to(2);
                self.close_to(1);
            }
            _ => {}
        }
    }

    fn trace(&self) -> Option<TraceId> {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_core::pipeline::{GcdVerdict, StageVerdict};
    use dda_core::result::{Answer, DependenceResult, DistanceVector, ResolvedBy};
    use dda_core::TestKind;

    #[test]
    fn trace_id_is_stamped_on_every_jsonl_line() {
        let mut rec = SpanRecorder::with_trace(TraceId(0xfeed));
        rec.begin_program("p");
        feed_pair(&mut rec);
        rec.finish();
        assert_eq!(rec.trace(), Some(TraceId(0xfeed)));
        let jsonl = rec.to_jsonl();
        assert!(!jsonl.is_empty());
        for line in jsonl.lines() {
            assert!(
                line.starts_with("{\"trace\":\"000000000000feed\","),
                "line missing trace stamp: {line}"
            );
        }
        // An untraced recorder's output is unchanged: no trace field.
        let mut bare = SpanRecorder::new();
        bare.begin_program("p");
        feed_pair(&mut bare);
        bare.finish();
        assert!(!bare.to_jsonl().contains("\"trace\""));
    }

    fn feed_pair(rec: &mut SpanRecorder) {
        rec.record(TraceEvent::PairStarted {
            array: "a".into(),
            a_access: 0,
            b_access: 1,
            common: 1,
        });
        rec.record(TraceEvent::Gcd {
            verdict: GcdVerdict::Lattice,
            cached: false,
            nanos: 100,
        });
        rec.record(TraceEvent::Stage {
            test: TestKind::Svpc,
            verdict: StageVerdict::Dependent,
            nanos: 200,
        });
        rec.record(TraceEvent::RefinementStarted);
        rec.record(TraceEvent::Stage {
            test: TestKind::Svpc,
            verdict: StageVerdict::Independent,
            nanos: 40,
        });
        rec.record(TraceEvent::Directions {
            vectors: Vec::new(),
            distance: DistanceVector::default(),
            tests: 1,
            exact: true,
            nanos: 65,
        });
        rec.record(TraceEvent::PairFinished {
            result: DependenceResult {
                answer: Answer::Independent,
                resolved_by: ResolvedBy::Gcd,
            },
            from_cache: false,
        });
    }

    #[test]
    fn spans_nest_and_sum() {
        let mut rec = SpanRecorder::new();
        rec.begin_program("t.loop");
        feed_pair(&mut rec);
        rec.finish();
        let spans: Vec<_> = rec.spans().cloned().collect();
        let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "analyze:t.loop",
                "pair:a#0-1",
                "gcd",
                "stage:svpc",
                "refinement",
                "stage:svpc",
                "directions",
            ]
        );
        // Seqs are monotonic from zero.
        assert_eq!(
            spans.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![0, 1, 2, 3, 4, 5, 6]
        );
        // Refinement = 40 (stage) + 25 (directions overhead) = 65.
        assert_eq!(spans[4].nanos, 65);
        // Pair = 100 + 200 + 65; root matches the pair.
        assert_eq!(spans[1].nanos, 365);
        assert_eq!(spans[0].nanos, 365);
        // Parent links by seq.
        assert_eq!(spans[1].parent, Some(0));
        assert_eq!(spans[2].parent, Some(1));
        assert_eq!(spans[5].parent, Some(4));
    }

    #[test]
    fn folded_output_aggregates_leaf_stacks() {
        let mut rec = SpanRecorder::new();
        rec.begin_program("t.loop");
        feed_pair(&mut rec);
        feed_pair(&mut rec);
        rec.finish();
        let folded = rec.to_folded();
        let expected = "\
analyze:t.loop;pair:a#0-1;gcd 200
analyze:t.loop;pair:a#0-1;refinement;directions 50
analyze:t.loop;pair:a#0-1;refinement;stage:svpc 80
analyze:t.loop;pair:a#0-1;stage:svpc 400
";
        assert_eq!(folded, expected);
    }

    #[test]
    fn jsonl_has_no_timestamps_and_carries_seq() {
        let mut rec = SpanRecorder::new();
        rec.begin_program("t.loop");
        feed_pair(&mut rec);
        rec.finish();
        let jsonl = rec.to_jsonl();
        let first = jsonl.lines().next().unwrap();
        assert_eq!(
            first,
            "{\"seq\":0,\"parent\":null,\"depth\":0,\"name\":\"analyze:t.loop\",\"nanos\":365}"
        );
        for line in jsonl.lines() {
            assert!(line.contains("\"seq\":"));
            assert!(!line.contains("timestamp"));
        }
    }

    #[test]
    fn multiple_programs_get_separate_roots() {
        let mut rec = SpanRecorder::new();
        rec.begin_program("a.loop");
        feed_pair(&mut rec);
        rec.begin_program("b.loop");
        feed_pair(&mut rec);
        rec.finish();
        let roots: Vec<_> = rec.spans().filter(|s| s.parent.is_none()).collect();
        assert_eq!(roots.len(), 2);
        assert_eq!(roots[0].name, "analyze:a.loop");
        assert_eq!(roots[1].name, "analyze:b.loop");
        // Seq keeps climbing across programs.
        assert!(roots[1].seq > roots[0].seq);
    }
}
