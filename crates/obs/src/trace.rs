//! Request-scoped tracing: a [`TraceContext`] pairs a 64-bit
//! [`TraceId`] with a request-local [`MetricsRegistry`] delta.
//!
//! The service creates one context per analysis request and threads it
//! (by reference) through the engine's waves into the pipeline probes.
//! Every recording site *tees*: the process-global registry keeps its
//! cumulative totals, and the context's local registry accumulates only
//! this request's share — so a pair verdict, a stage timing, a memo
//! fault or a deadline event is attributable to the request that caused
//! it. Teeing is one extra relaxed atomic add per event, so the
//! allocation-free hot path (pinned in `tests/alloc.rs`) is preserved,
//! and because nothing here feeds back into analysis, verdicts stay
//! bit-identical with tracing on or off (proptested in `tests/obs.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::MetricsRegistry;
pub use dda_core::pipeline::TraceId;

/// One request's observability scope: its trace id plus the
/// request-local metrics delta.
#[derive(Debug, Default)]
pub struct TraceContext {
    id: u64,
    local: MetricsRegistry,
}

impl TraceContext {
    /// Creates a context for `id` with an empty local registry.
    #[must_use]
    pub fn new(id: TraceId) -> TraceContext {
        TraceContext {
            id: id.0,
            local: MetricsRegistry::new(),
        }
    }

    /// The request's trace id.
    #[must_use]
    pub fn id(&self) -> TraceId {
        TraceId(self.id)
    }

    /// The request-local metrics delta. Recording sites tee into this
    /// alongside the global registry; after the request completes it
    /// holds exactly this request's stage/GCD/refinement telemetry.
    #[must_use]
    pub fn local(&self) -> &MetricsRegistry {
        &self.local
    }
}

/// Generates distinct, well-scattered trace ids: a SplitMix64 stream
/// seeded from the wall clock at construction. Lock-free (`fetch_add`
/// on the stream counter) and collision-resistant enough for request
/// correlation; ids carry no ordering or timing information.
#[derive(Debug)]
pub struct TraceIdGen {
    state: AtomicU64,
}

impl Default for TraceIdGen {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceIdGen {
    /// Creates a generator seeded from the current wall clock.
    #[must_use]
    pub fn new() -> TraceIdGen {
        let seed = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| u64::try_from(d.as_nanos() & u128::from(u64::MAX)).unwrap_or(0))
            .unwrap_or(0x9e37_79b9_7f4a_7c15);
        TraceIdGen::seeded(seed)
    }

    /// Creates a generator with a fixed seed (tests).
    #[must_use]
    pub fn seeded(seed: u64) -> TraceIdGen {
        TraceIdGen {
            state: AtomicU64::new(seed),
        }
    }

    /// The next trace id in the stream. Never returns the zero id, so
    /// `TraceId(0)` stays available as an "untraced" marker in logs.
    pub fn next_id(&self) -> TraceId {
        loop {
            // SplitMix64: increment by the golden-gamma constant, then
            // finalize. The increment is the atomic step, so concurrent
            // callers get distinct stream positions.
            let z = self
                .state
                .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed)
                .wrapping_add(0x9e37_79b9_7f4a_7c15);
            let z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            let z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            let id = z ^ (z >> 31);
            if id != 0 {
                return TraceId(id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_hex_round_trips() {
        for raw in [0u64, 1, 0xdead_beef, u64::MAX] {
            let id = TraceId(raw);
            assert_eq!(TraceId::from_hex(&id.to_string()), Some(id));
        }
        assert_eq!(TraceId(0xab).to_string(), "00000000000000ab");
        assert_eq!(TraceId::from_hex("AB"), Some(TraceId(0xab)));
        assert_eq!(TraceId::from_hex(""), None);
        assert_eq!(TraceId::from_hex("xyz"), None);
        assert_eq!(TraceId::from_hex("00000000000000000"), None, "17 digits");
    }

    #[test]
    fn generator_yields_distinct_nonzero_ids() {
        let gen = TraceIdGen::seeded(42);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let id = gen.next_id();
            assert_ne!(id.0, 0);
            assert!(seen.insert(id), "duplicate id {id}");
        }
    }

    #[test]
    fn context_exposes_id_and_local_registry() {
        let ctx = TraceContext::new(TraceId(7));
        assert_eq!(ctx.id(), TraceId(7));
        ctx.local().record_incremental(2, 3);
        assert_eq!(ctx.local().incremental_spliced(), 2);
        assert_eq!(ctx.local().incremental_resolved(), 3);
    }
}
