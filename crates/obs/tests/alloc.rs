//! Allocation-free hot path, pinned with a counting global allocator.
//!
//! The registry's overhead budget (DESIGN.md §9) rests on the recording
//! path being a handful of relaxed atomic adds: no locks, no heap. This
//! binary installs an allocator that counts every `alloc`, exercises
//! counters, histograms and the probe with `Copy`-payload events, and
//! asserts the count never moves.
//!
//! One test only — the counter is process-global, and a sibling test
//! allocating concurrently would race the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use dda_core::pipeline::{GcdVerdict, Probe, StageVerdict, TraceEvent};
use dda_core::TestKind;
use dda_obs::{Counter, Histogram, MetricsProbe, MetricsRegistry};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::SeqCst);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

#[test]
fn recording_hot_path_never_allocates() {
    // Construction may allocate (per-worker vectors); the hot path is
    // what happens per event, measured after everything is built.
    let registry = MetricsRegistry::with_workers(4);
    let counter = Counter::new();
    let histogram = Histogram::new();
    let mut probe = MetricsProbe::new(&registry);

    // The counter is process-global, so stray allocations from libtest's
    // harness threads can land inside any single window. A genuine per-event
    // allocation shows up in every window (10k events each); noise does not,
    // so assert on the minimum delta across several windows.
    let mut min_delta = u64::MAX;
    for _ in 0..8 {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        for i in 0..10_000u64 {
            counter.inc();
            counter.add(i);
            histogram.record(i * 37);
            registry.record_stage(TestKind::FourierMotzkin, StageVerdict::Unknown, i);
            registry.record_gcd(GcdVerdict::Lattice, i % 2 == 0, i);
            registry.record_refinement(3, i);
            probe.record(TraceEvent::Stage {
                test: TestKind::Svpc,
                verdict: StageVerdict::Independent,
                nanos: i,
            });
            probe.record(TraceEvent::Gcd {
                verdict: GcdVerdict::Independent,
                cached: false,
                nanos: i,
            });
            probe.record(TraceEvent::CacheHit);
        }
        // Reading counters back is also allocation-free.
        std::hint::black_box((counter.get(), histogram.count(), registry.gcd_cache_hits()));
        let after = ALLOCATIONS.load(Ordering::SeqCst);
        min_delta = min_delta.min(after - before);
    }
    assert_eq!(
        min_delta, 0,
        "metrics hot path allocated {min_delta} time(s) in the quietest window"
    );
}
