//! The synthetic program generator.
//!
//! For each category, the generator creates as many *unique* loop nests as
//! the paper's Table 2 unique-case ratio dictates, then repeats them
//! (round-robin) until the Table 1 pair count is reached. Every nest uses
//! a fresh array name, so nests never interact and each contributes
//! exactly one reference pair; memoization nevertheless collapses the
//! repeats, because array names never enter the memo key.

use rand::rngs::StdRng;
use rand::SeedableRng;

use dda_ir::{parse_program, Program};

use crate::patterns::{emit, Category};
use crate::spec::{ProgramSpec, SPECS};

/// A generated synthetic PERFECT program.
#[derive(Debug, Clone)]
pub struct SyntheticProgram {
    /// The calibration spec this program was generated from.
    pub spec: ProgramSpec,
    /// The DSL source text.
    pub source: String,
    /// The parsed program.
    pub program: Program,
}

impl SyntheticProgram {
    /// The program's PERFECT acronym.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.spec.name
    }
}

fn seed_for(name: &str) -> u64 {
    name.bytes().fold(0xDDA0_1991u64, |h, b| {
        h.wrapping_mul(0x100_0000_01b3).wrapping_add(u64::from(b))
    })
}

fn scaled(count: u32, scale: f64) -> usize {
    if count == 0 {
        return 0;
    }
    (((f64::from(count)) * scale).round() as usize).max(1)
}

/// Generates one synthetic program at the given scale (1.0 reproduces the
/// paper's pair counts; smaller scales keep the same proportions for fast
/// tests).
///
/// # Panics
///
/// Panics if an emitted template fails to parse — templates are covered by
/// calibration tests, so this indicates an internal bug.
#[must_use]
pub fn generate(spec: &ProgramSpec, scale: f64) -> SyntheticProgram {
    let mut rng = StdRng::seed_from_u64(seed_for(spec.name));
    let mut source = String::new();
    let mut array_counter = 0usize;

    let plan: [(Category, u32); 7] = [
        (Category::Constant, spec.constant),
        (Category::Gcd, spec.gcd),
        (Category::Svpc, spec.svpc),
        (Category::Acyclic, spec.acyclic),
        (Category::LoopResidue, spec.loop_residue),
        (Category::FourierMotzkin, spec.fourier_motzkin),
        (Category::Symbolic, spec.symbolic),
    ];

    for (category, total) in plan {
        let total = scaled(total, scale);
        if total == 0 {
            continue;
        }
        let unique = ((total as f64) * spec.unique_pct / 100.0).round().max(1.0) as usize;
        let unique = unique.min(total);

        // Draw unique templates. Parameters are random, so collisions are
        // possible but rare; they only make the workload slightly more
        // repetitive, which is harmless.
        let templates: Vec<String> = (0..unique)
            .map(|_| emit(category, "ARR", &mut rng))
            .collect();

        for k in 0..total {
            let arr = format!("a{array_counter}");
            array_counter += 1;
            let body = templates[k % unique].replace("ARR", &arr);
            // A third of the instances sit under an irrelevant outer loop
            // with a varying bound: the simple memo scheme sees distinct
            // inputs while the improved scheme still collapses them — the
            // source of the paper's Table 2 simple/improved gap. (Symbolic
            // templates carry `read` statements that must stay
            // loop-invariant, so they are never wrapped.)
            use rand::Rng;
            let roll = rng.gen_range(0..100);
            if !body.contains("read(") && roll < 40 {
                let wu = rng.gen_range(2..=9);
                if roll < 15 {
                    // Two irrelevant levels: the Table 4 blowup is
                    // exponential in unrefined nesting depth.
                    let wv = rng.gen_range(2..=7);
                    source.push_str(&format!(
                        "for w = 1 to {wu} {{ for v = 1 to {wv} {{ {} }} }}\n",
                        body.trim_end()
                    ));
                } else {
                    source.push_str(&format!("for w = 1 to {wu} {{ {} }}\n", body.trim_end()));
                }
            } else {
                source.push_str(&body);
            }
        }
    }

    let program = parse_program(&source).expect("generated source must parse");
    SyntheticProgram {
        spec: *spec,
        source,
        program,
    }
}

/// Generates the whole 13-program suite.
#[must_use]
pub fn perfect_suite(scale: f64) -> Vec<SyntheticProgram> {
    SPECS.iter().map(|s| generate(s, scale)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_core::{AnalyzerConfig, DependenceAnalyzer, MemoMode};

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&SPECS[0], 0.05);
        let b = generate(&SPECS[0], 0.05);
        assert_eq!(a.source, b.source);
    }

    #[test]
    fn pair_counts_match_spec_at_small_scale() {
        // Each nest contributes exactly one pair.
        let scale = 0.05;
        for spec in &SPECS[..4] {
            let sp = generate(spec, scale);
            let mut an = DependenceAnalyzer::with_config(AnalyzerConfig {
                memo: MemoMode::Off,
                compute_directions: false,
                ..AnalyzerConfig::default()
            });
            let report = an.analyze_program(&sp.program);
            let expected: usize = [
                spec.constant,
                spec.gcd,
                spec.svpc,
                spec.acyclic,
                spec.loop_residue,
                spec.fourier_motzkin,
                spec.symbolic,
            ]
            .iter()
            .map(|&c| {
                if c == 0 {
                    0
                } else {
                    ((f64::from(c) * scale).round() as usize).max(1)
                }
            })
            .sum();
            assert_eq!(report.stats.pairs as usize, expected, "{}", spec.name);
        }
    }

    #[test]
    fn category_distribution_respected() {
        // NA exercises four categories; verify the analyzer's attribution
        // matches the spec proportions at scale.
        let spec = SPECS.iter().find(|s| s.name == "NA").unwrap();
        let sp = generate(spec, 0.1);
        let mut an = DependenceAnalyzer::with_config(AnalyzerConfig {
            memo: MemoMode::Off,
            compute_directions: false,
            symbolic: true,
            ..AnalyzerConfig::default()
        });
        let report = an.analyze_program(&sp.program);
        let s = &report.stats;
        assert_eq!(
            s.constant,
            u64::from((f64::from(spec.constant) * 0.1).round() as u32)
        );
        // SVPC dominates; acyclic nontrivial; symbolic pairs add tests on top.
        assert!(
            s.base_tests.calls[0] >= 60,
            "svpc {}",
            s.base_tests.calls[0]
        );
        assert!(
            s.base_tests.calls[1] >= 15,
            "acyclic {}",
            s.base_tests.calls[1]
        );
        assert_eq!(s.assumed, 0);
    }

    #[test]
    fn memoization_ratio_tracks_spec() {
        // SR has a 1.1% unique ratio: memoization should collapse nearly
        // everything.
        let spec = SPECS.iter().find(|s| s.name == "SR").unwrap();
        let sp = generate(spec, 0.2);
        let mut an = DependenceAnalyzer::new();
        let report = an.analyze_program(&sp.program);
        let s = &report.stats;
        assert!(s.memo_queries > 0);
        let unique = s.memo_queries - s.memo_hits;
        let pct = 100.0 * unique as f64 / s.memo_queries as f64;
        assert!(pct < 25.0, "unique {pct:.1}% should be small for SR");
    }

    #[test]
    fn full_suite_generates() {
        let suite = perfect_suite(0.02);
        assert_eq!(suite.len(), 13);
        for p in &suite {
            assert!(p.program.num_stmts() > 0, "{}", p.name());
        }
    }
}
