//! Synthetic PERFECT Club benchmark suite.
//!
//! The paper evaluates on the 13 PERFECT Club Fortran programs, which are
//! not redistributable. What the evaluation actually measures, though, is
//! a *distribution*: how often each reference-pattern class occurs and how
//! often patterns repeat. This crate regenerates that distribution from
//! the paper's own published numbers:
//!
//! - Table 1 fixes, per program, how many pairs each test resolves
//!   (constant, GCD-independent, SVPC, Acyclic, Loop Residue,
//!   Fourier–Motzkin);
//! - Table 2 fixes the unique-case ratio (how repetitive the patterns
//!   are), which drives memoization behaviour;
//! - the Table 5 → Table 7 growth fixes how many pairs involve symbolic
//!   terms.
//!
//! Each pattern family is *calibrated*: unit tests assert that every
//! emitted template really is resolved by the intended test in the exact
//! analyzer, so Table 1's shape is reproduced by construction and the
//! remaining tables emerge from running the analyzer.
//!
//! # Examples
//!
//! ```
//! use dda_perfect::{generate, SPECS};
//! use dda_core::DependenceAnalyzer;
//!
//! let program = generate(&SPECS[0], 0.02); // "AP" at 2% scale
//! let mut analyzer = DependenceAnalyzer::new();
//! let report = analyzer.analyze_program(&program.program);
//! assert!(report.stats.pairs > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod generate;
pub mod patterns;
mod spec;

pub use generate::{generate, perfect_suite, SyntheticProgram};
pub use spec::{ProgramSpec, SPECS};
