//! Pattern templates: loop nests engineered to be resolved by a specific
//! dependence test.
//!
//! Each template emits one self-contained loop nest over a fresh array, so
//! it contributes exactly one reference pair, and each template family is
//! *calibrated* (see the tests) to resolve via the intended test. The
//! parameter spaces (offsets, strides, bounds) provide enough distinct
//! instances to hit the paper's unique-case ratios.

use rand::rngs::StdRng;
use rand::Rng;

/// Which paper category a template targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Constant subscripts (no dependence testing).
    Constant,
    /// Extended GCD proves independence.
    Gcd,
    /// SVPC test.
    Svpc,
    /// Acyclic test.
    Acyclic,
    /// Loop Residue test.
    LoopResidue,
    /// Fourier–Motzkin backup.
    FourierMotzkin,
    /// Symbolic (Section 8) pairs.
    Symbolic,
}

impl Category {
    /// All categories in table order.
    pub const ALL: [Category; 7] = [
        Category::Constant,
        Category::Gcd,
        Category::Svpc,
        Category::Acyclic,
        Category::LoopResidue,
        Category::FourierMotzkin,
        Category::Symbolic,
    ];
}

/// Emits the source of one loop nest of the given category over array
/// `arr`, with parameters drawn from `rng`. Distinct draws usually give
/// distinct dependence problems; identical draws give memo hits.
pub fn emit(category: Category, arr: &str, rng: &mut StdRng) -> String {
    match category {
        Category::Constant => {
            let u = 10 * rng.gen_range(1..=10);
            let c = rng.gen_range(1..=40);
            if rng.gen_bool(0.5) {
                // Output self-dependence on a constant location.
                format!("for i = 1 to {u} {{ {arr}[{c}] = {arr}[{c}] + 1; }}\n")
            } else {
                format!(
                    "for i = 1 to {u} {{ {arr}[{c}] = {arr}[{}] + 1; }}\n",
                    c + 1
                )
            }
        }
        Category::Gcd => {
            let u = 10 * rng.gen_range(1..=8);
            if rng.gen_bool(0.6) {
                // Coupled inconsistent equalities: i = i′ and i = i′ + d.
                // Only a *simultaneous* (extended-GCD) view catches this;
                // the per-dimension baselines of Section 7 cannot.
                let d = rng.gen_range(1..=5);
                format!("for i = 1 to {u} {{ {arr}[i][i] = {arr}[i][i + {d}] + 1; }}\n")
            } else {
                let s = rng.gen_range(2..=5);
                let r = rng.gen_range(1..s);
                format!("for i = 1 to {u} {{ {arr}[{s} * i] = {arr}[{s} * i + {r}] + 1; }}\n")
            }
        }
        Category::Svpc => {
            let u = 10 * rng.gen_range(1..=8);
            match rng.gen_range(0..20) {
                // ~15% independent, like the paper's 40/308.
                0 | 10 | 15 => {
                    let c = rng.gen_range(1..=9);
                    format!(
                        "for i = 1 to {u} {{ {arr}[i] = {arr}[i + {}] + 1; }}\n",
                        u + c
                    )
                }
                1..=2 | 11..=12 => {
                    // Non-constant distance: direction refinement must test.
                    let d = rng.gen_range(1..=5);
                    format!("for i = 1 to {u} {{ {arr}[i] = {arr}[2 * i + {d}] + 1; }}\n")
                }
                3 | 13 => {
                    // Coupled 2-D independent (the paper's showpiece).
                    format!(
                        "for i = 1 to {u} {{ for j = 1 to {u} {{ \
                         {arr}[i][j] = {arr}[j + {u}][i + {}] + 1; }} }}\n",
                        u - 1
                    )
                }
                4 | 14 => {
                    // 2-D dependent, constant distance on the inner level.
                    let d = rng.gen_range(1..=4);
                    format!(
                        "for i = 1 to {u} {{ for j = 1 to {u} {{ \
                         {arr}[i][j + {d}] = {arr}[i][j] + 1; }} }}\n"
                    )
                }
                5 => {
                    // Transposed coupling: exactly three direction vectors
                    // ((<,>), (=,=), (>,<)); per-dimension baselines
                    // over-report all nine — a Section 7 driver.
                    format!(
                        "for i = 1 to {u} {{ for j = 1 to {u} {{ \
                         {arr}[i][j] = {arr}[j][i] + 1; }} }}\n"
                    )
                }

                _ => {
                    let d = rng.gen_range(1..=8.min(u - 1));
                    format!("for i = 1 to {u} {{ {arr}[i + {d}] = {arr}[i] + 1; }}\n")
                }
            }
        }
        Category::Acyclic => {
            let u = 10 * rng.gen_range(1..=6);
            if rng.gen_range(0..12) == 0 {
                // Independent flavour: offset exceeds the whole range.
                format!(
                    "for i = 1 to {u} {{ for j = i to {u} {{ \
                     {arr}[j + {}] = {arr}[j] + 1; }} }}\n",
                    2 * u
                )
            } else {
                let d = rng.gen_range(1..=6);
                if rng.gen_bool(0.5) {
                    format!(
                        "for i = 1 to {u} {{ for j = i to {u} {{ \
                         {arr}[j + {d}] = {arr}[j] + 1; }} }}\n"
                    )
                } else {
                    format!(
                        "for i = 1 to {u} {{ for j = i to {u} {{ \
                         {arr}[j] = {arr}[j - {d}] + 1; }} }}\n"
                    )
                }
            }
        }
        Category::LoopResidue => {
            let u = 10 * rng.gen_range(1..=6);
            let k = rng.gen_range(2..=6);
            let d = rng.gen_range(1..=k);
            if rng.gen_bool(0.5) {
                format!(
                    "for i = 1 to {u} {{ for j = i to i + {k} {{ \
                     {arr}[j] = {arr}[j + {d}] + 1; }} }}\n"
                )
            } else {
                format!(
                    "for i = 1 to {u} {{ for j = i to i + {k} {{ \
                     {arr}[j + {d}] = {arr}[j] + 1; }} }}\n"
                )
            }
        }
        Category::FourierMotzkin => {
            let u = 10 * rng.gen_range(1..=4);
            let c = rng.gen_range(1..=6);
            match rng.gen_range(0..4) {
                0 => format!(
                    "for i = 1 to {u} {{ for j = i to {u} {{ \
                     {arr}[2 * i + j] = {arr}[i + 2 * j + {c}] + 1; }} }}\n"
                ),
                1 => format!(
                    "for i = 1 to {u} {{ for j = 1 to {u} {{ \
                     {arr}[i + j] = {arr}[i + j + {c}] + 1; }} }}\n"
                ),
                2 => format!(
                    "for i = 1 to {u} {{ for j = 1 to {u} {{ \
                     {arr}[i - j] = {arr}[i - j + {c}] + 1; }} }}\n"
                ),
                _ => format!(
                    "for i = 1 to {u} {{ for j = 1 to {u} {{ \
                     {arr}[2 * i + j] = {arr}[i + 2 * j + {c}] + 1; }} }}\n"
                ),
            }
        }
        Category::Symbolic => {
            let d = rng.gen_range(1..=6);
            let u = 10 * rng.gen_range(1..=6);
            match rng.gen_range(0..3) {
                0 => format!(
                    "read(n{arr}); for i = 1 to {u} {{ \
                     {arr}[i + n{arr}] = {arr}[i + 2 * n{arr} + {d}] + 1; }}\n"
                ),
                1 => format!("for i = 1 to n{arr} {{ {arr}[i + {d}] = {arr}[i] + 1; }}\n"),
                _ => format!(
                    "read(n{arr}); for i = 1 to {u} {{ \
                     {arr}[i + n{arr}] = {arr}[i + n{arr} + {d}] + 1; }}\n"
                ),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dda_core::{AnalyzerConfig, DependenceAnalyzer, MemoMode, ResolvedBy, TestKind};
    use dda_ir::parse_program;
    use rand::SeedableRng;

    /// Every template instance must resolve via its intended category.
    #[test]
    fn templates_are_calibrated() {
        let mut rng = StdRng::seed_from_u64(0xDDA);
        for category in Category::ALL {
            for trial in 0..40 {
                let src = emit(category, "a", &mut rng);
                let program = parse_program(&src)
                    .unwrap_or_else(|e| panic!("parse {category:?}: {e}\n{src}"));
                let mut an = DependenceAnalyzer::with_config(AnalyzerConfig {
                    memo: MemoMode::Off,
                    ..AnalyzerConfig::default()
                });
                let report = an.analyze_program(&program);
                assert_eq!(report.pairs().len(), 1, "{category:?} {src}");
                let resolved = report.pairs()[0].result.resolved_by;
                let ok = match category {
                    Category::Constant => resolved == ResolvedBy::Constant,
                    Category::Gcd => resolved == ResolvedBy::Gcd,
                    Category::Svpc => resolved == ResolvedBy::Test(TestKind::Svpc),
                    Category::Acyclic => resolved == ResolvedBy::Test(TestKind::Acyclic),
                    Category::LoopResidue => resolved == ResolvedBy::Test(TestKind::LoopResidue),
                    Category::FourierMotzkin => {
                        resolved == ResolvedBy::Test(TestKind::FourierMotzkin)
                    }
                    // Symbolic pairs land wherever the shape dictates; they
                    // must simply be *tested* (not assumed).
                    Category::Symbolic => {
                        matches!(resolved, ResolvedBy::Test(_))
                    }
                };
                assert!(
                    ok,
                    "{category:?} trial {trial} resolved by {resolved:?}:\n{src}"
                );
            }
        }
    }

    /// Symbolic templates must actually contain symbolic terms.
    #[test]
    fn symbolic_templates_need_symbols() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let src = emit(Category::Symbolic, "a", &mut rng);
            let program = parse_program(&src).unwrap();
            let mut an = DependenceAnalyzer::with_config(AnalyzerConfig {
                symbolic: false,
                memo: MemoMode::Off,
                ..AnalyzerConfig::default()
            });
            let report = an.analyze_program(&program);
            assert_eq!(report.stats.assumed, 1, "{src}");
        }
    }
}
