//! Per-program calibration targets, transcribed from the paper's tables.
//!
//! Table 1 gives, for each of the 13 PERFECT Club programs, how many
//! reference pairs each dependence test resolved; Table 2 gives the
//! fraction of unique cases under memoization. The synthetic generator
//! reproduces those *distributions* — the real Fortran sources are not
//! reproducible, but the evaluation only depends on the pattern mix.

/// Calibration targets for one synthetic program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgramSpec {
    /// Program acronym from the PERFECT Club.
    pub name: &'static str,
    /// Source lines of the original Fortran program (reported, not
    /// generated).
    pub lines: u32,
    /// Pairs with constant subscripts (Table 1 "Constant").
    pub constant: u32,
    /// Pairs proven independent by the extended GCD test alone.
    pub gcd: u32,
    /// Pairs resolved by the SVPC test.
    pub svpc: u32,
    /// Pairs resolved by the Acyclic test.
    pub acyclic: u32,
    /// Pairs resolved by the Loop Residue test.
    pub loop_residue: u32,
    /// Pairs resolved by Fourier–Motzkin.
    pub fourier_motzkin: u32,
    /// Extra pairs exercising symbolic (Section 8) terms; approximated
    /// from the Table 5 → Table 7 growth.
    pub symbolic: u32,
    /// Percentage of unique cases with bounds under the improved
    /// memoization scheme (Table 2).
    pub unique_pct: f64,
}

impl ProgramSpec {
    /// Total dependence-test pairs (everything except constants and GCD).
    #[must_use]
    pub fn test_pairs(&self) -> u32 {
        self.svpc + self.acyclic + self.loop_residue + self.fourier_motzkin
    }

    /// Total reference pairs of all kinds.
    #[must_use]
    pub fn total_pairs(&self) -> u32 {
        self.constant + self.gcd + self.test_pairs() + self.symbolic
    }
}

/// The 13 PERFECT Club programs, calibrated from Tables 1, 2 and 7.
pub const SPECS: [ProgramSpec; 13] = [
    ProgramSpec {
        name: "AP",
        lines: 6104,
        constant: 229,
        gcd: 91,
        svpc: 613,
        acyclic: 0,
        loop_residue: 0,
        fourier_motzkin: 0,
        symbolic: 8,
        unique_pct: 4.4,
    },
    ProgramSpec {
        name: "CS",
        lines: 18520,
        constant: 50,
        gcd: 0,
        svpc: 127,
        acyclic: 15,
        loop_residue: 0,
        fourier_motzkin: 0,
        symbolic: 6,
        unique_pct: 14.1,
    },
    ProgramSpec {
        name: "LG",
        lines: 2327,
        constant: 6961,
        gcd: 0,
        svpc: 73,
        acyclic: 0,
        loop_residue: 0,
        fourier_motzkin: 0,
        symbolic: 2,
        unique_pct: 31.5,
    },
    ProgramSpec {
        name: "LW",
        lines: 1237,
        constant: 54,
        gcd: 0,
        svpc: 34,
        acyclic: 43,
        loop_residue: 0,
        fourier_motzkin: 0,
        symbolic: 0,
        unique_pct: 22.1,
    },
    ProgramSpec {
        name: "MT",
        lines: 3785,
        constant: 49,
        gcd: 0,
        svpc: 326,
        acyclic: 0,
        loop_residue: 0,
        fourier_motzkin: 0,
        symbolic: 2,
        unique_pct: 4.3,
    },
    ProgramSpec {
        name: "NA",
        lines: 3976,
        constant: 45,
        gcd: 0,
        svpc: 679,
        acyclic: 202,
        loop_residue: 1,
        fourier_motzkin: 2,
        symbolic: 20,
        unique_pct: 6.9,
    },
    ProgramSpec {
        name: "OC",
        lines: 2739,
        constant: 2,
        gcd: 7,
        svpc: 36,
        acyclic: 0,
        loop_residue: 0,
        fourier_motzkin: 0,
        symbolic: 1,
        unique_pct: 13.9,
    },
    ProgramSpec {
        name: "SD",
        lines: 7607,
        constant: 949,
        gcd: 0,
        svpc: 526,
        acyclic: 17,
        loop_residue: 5,
        fourier_motzkin: 12,
        symbolic: 0,
        unique_pct: 8.8,
    },
    ProgramSpec {
        name: "SM",
        lines: 2759,
        constant: 1004,
        gcd: 98,
        svpc: 264,
        acyclic: 0,
        loop_residue: 0,
        fourier_motzkin: 0,
        symbolic: 0,
        unique_pct: 3.0,
    },
    ProgramSpec {
        name: "SR",
        lines: 3970,
        constant: 1679,
        gcd: 0,
        svpc: 1290,
        acyclic: 0,
        loop_residue: 0,
        fourier_motzkin: 0,
        symbolic: 3,
        unique_pct: 1.1,
    },
    ProgramSpec {
        name: "TF",
        lines: 2020,
        constant: 801,
        gcd: 6,
        svpc: 826,
        acyclic: 0,
        loop_residue: 0,
        fourier_motzkin: 0,
        symbolic: 6,
        unique_pct: 2.4,
    },
    ProgramSpec {
        name: "TI",
        lines: 484,
        constant: 0,
        gcd: 0,
        svpc: 4,
        acyclic: 42,
        loop_residue: 0,
        fourier_motzkin: 0,
        symbolic: 0,
        unique_pct: 23.9,
    },
    ProgramSpec {
        name: "WS",
        lines: 3884,
        constant: 36,
        gcd: 182,
        svpc: 378,
        acyclic: 4,
        loop_residue: 0,
        fourier_motzkin: 160,
        symbolic: 2,
        unique_pct: 11.6,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_table1() {
        let lines: u32 = SPECS.iter().map(|s| s.lines).sum();
        assert_eq!(lines, 59_412);
        let constant: u32 = SPECS.iter().map(|s| s.constant).sum();
        assert_eq!(constant, 11_859);
        let gcd: u32 = SPECS.iter().map(|s| s.gcd).sum();
        assert_eq!(gcd, 384);
        let svpc: u32 = SPECS.iter().map(|s| s.svpc).sum();
        assert_eq!(svpc, 5_176);
        let acyclic: u32 = SPECS.iter().map(|s| s.acyclic).sum();
        assert_eq!(acyclic, 323);
        let lr: u32 = SPECS.iter().map(|s| s.loop_residue).sum();
        assert_eq!(lr, 6);
        let fm: u32 = SPECS.iter().map(|s| s.fourier_motzkin).sum();
        assert_eq!(fm, 174);
        // Test-pair total matches the paper's 5,679.
        let tests: u32 = SPECS.iter().map(ProgramSpec::test_pairs).sum();
        assert_eq!(tests, 5_679);
    }

    #[test]
    fn unique_percentages_in_range() {
        for s in &SPECS {
            assert!(s.unique_pct > 0.0 && s.unique_pct < 100.0, "{}", s.name);
        }
    }
}
