//! A deliberately minimal HTTP/1.1 implementation over `std::net` —
//! just enough for the analysis service: one request per connection
//! (`Connection: close`), `Content-Length` bodies only, bounded header
//! and body sizes. No external dependencies; the container is offline.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body (a batch manifest or one program).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Largest accepted header block.
pub const MAX_HEADER_BYTES: usize = 64 * 1024;

/// One parsed request: method, path, decoded query pairs, UTF-8 body.
#[derive(Debug)]
pub struct Request {
    /// Request method (`GET`, `POST`, …), as sent.
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Query parameters (`?a=b&c` → `{a: "b", c: ""}`; no %-decoding —
    /// the service's parameters are plain tokens).
    pub query: HashMap<String, String>,
    /// Request headers, names lowercased, values trimmed. Later
    /// duplicates overwrite earlier ones.
    pub headers: HashMap<String, String>,
    /// The request body (empty without a `Content-Length`).
    pub body: String,
}

impl Request {
    /// A header value by case-insensitive name.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.get(&name.to_ascii_lowercase()).map(|s| &**s)
    }
}

/// Reads one request from the stream.
///
/// # Errors
///
/// Returns a human-readable reason on malformed or oversized input —
/// callers answer 400 with it.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(&*stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_owned();
    let target = parts.next().ok_or("missing request target")?.to_owned();

    let mut content_length = 0usize;
    let mut header_bytes = 0usize;
    let mut headers = HashMap::new();
    loop {
        let mut h = String::new();
        let n = reader
            .read_line(&mut h)
            .map_err(|e| format!("read header: {e}"))?;
        if n == 0 {
            return Err("connection closed mid-headers".into());
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err("headers too large".into());
        }
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((name, value)) = h.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| "bad Content-Length".to_owned())?;
            }
            headers.insert(name.to_ascii_lowercase(), value.trim().to_owned());
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err("body too large".into());
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_owned())?;

    let (path, query) = match target.split_once('?') {
        None => (target, HashMap::new()),
        Some((p, q)) => (p.to_owned(), parse_query(q)),
    };
    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn parse_query(q: &str) -> HashMap<String, String> {
    q.split('&')
        .filter(|s| !s.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (kv.to_owned(), String::new()),
        })
        .collect()
}

/// One response to write back.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Extra headers (name, value).
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A 200 response with the given body and content type.
    #[must_use]
    pub fn ok(body: String, content_type: &'static str) -> Response {
        Response {
            status: 200,
            content_type,
            headers: Vec::new(),
            body,
        }
    }

    /// A plain-text response with an explicit status.
    #[must_use]
    pub fn text(status: u16, body: &str) -> Response {
        Response {
            status,
            content_type: "text/plain",
            headers: Vec::new(),
            body: body.to_owned(),
        }
    }
}

fn reason_of(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// Writes `resp` and flushes. Connections are single-use
/// (`Connection: close`).
///
/// # Errors
///
/// Propagates I/O errors (the peer may have gone away).
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        resp.status,
        reason_of(resp.status),
        resp.content_type,
        resp.body.len(),
    );
    for (name, value) in &resp.headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(resp.body.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query_strings() {
        let q = parse_query("check=1&file=a.loop&flag");
        assert_eq!(q["check"], "1");
        assert_eq!(q["file"], "a.loop");
        assert_eq!(q["flag"], "");
        assert!(parse_query("").is_empty());
    }

    #[test]
    fn request_response_round_trip_over_a_socket() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let req = read_request(&mut stream).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/analyze");
            assert_eq!(req.query["check"], "1");
            assert_eq!(req.header("host"), Some("x"));
            assert_eq!(req.header("X-DDA-Trace-Id"), Some("00000000000000ab"));
            assert_eq!(req.header("absent"), None);
            assert_eq!(req.body, "hello body");
            write_response(&mut stream, &Response::ok("resp\n".into(), "text/plain")).unwrap();
        });

        let mut client = TcpStream::connect(addr).unwrap();
        let body = "hello body";
        let msg = format!(
            "POST /analyze?check=1 HTTP/1.1\r\nHost: x\r\n\
             X-DDA-Trace-Id: 00000000000000ab\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        client.write_all(msg.as_bytes()).unwrap();
        let mut reply = String::new();
        client.read_to_string(&mut reply).unwrap();
        server.join().unwrap();
        assert!(reply.starts_with("HTTP/1.1 200 OK\r\n"), "{reply}");
        assert!(reply.contains("Connection: close"), "{reply}");
        assert!(reply.ends_with("\r\n\r\nresp\n"), "{reply}");
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            read_request(&mut stream).expect_err("oversized body must be rejected")
        });
        let mut client = TcpStream::connect(addr).unwrap();
        let msg = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        client.write_all(msg.as_bytes()).unwrap();
        let err = server.join().unwrap();
        assert!(err.contains("too large"), "{err}");
    }
}
