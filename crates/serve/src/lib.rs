//! `dda-serve` — a long-running dependence-analysis service.
//!
//! The batch engine ([`dda_engine`]) is fast but cold: every `dda
//! batch` invocation rebuilds its memo tables from scratch (or reloads
//! them from disk). This crate keeps the tables *warm* instead: a
//! persistent server owns one [`dda_core::SharedMemo`] shared across
//! all requests, so the subexpression-level memoization the paper's
//! §5 measures compounds across submissions, not just within one.
//!
//! The service speaks a deliberately minimal HTTP/1.1 (module
//! [`http`]) over `std::net` — no external dependencies:
//!
//! | Route | Meaning |
//! |---|---|
//! | `POST /analyze` | body = one `.loop` program; JSONL report back |
//! | `POST /batch` | body = a batch manifest; one JSONL line per entry |
//! | `GET /metrics` | Prometheus exposition ([`dda_obs`] snapshot) |
//! | `GET /healthz` | liveness |
//! | `/shutdown` | graceful drain + atomic memo persist |
//!
//! Three service-grade behaviours distinguish this from "the CLI in a
//! loop":
//!
//! - **Bounded memory.** The memo tables carry a byte cap
//!   ([`ServeConfig::memo_max_bytes`]) enforced by second-chance
//!   eviction in `dda-core`; eviction never changes verdicts, only
//!   forces recomputation.
//! - **Deadlines.** Each request runs under a [`dda_engine::Deadline`]
//!   (server default or `?deadline_ms=` override). A timed-out request
//!   still answers 200 — with sound conservative partials and an
//!   `X-DDA-Deadline-Exceeded` header — never a hang.
//! - **Admission control.** A bounded accept queue feeds a fixed
//!   worker pool; overflow is shed with 429 and counted, so overload
//!   degrades by refusing work instead of queueing unboundedly.
//!
//! The JSONL bodies are rendered by [`render`] — the same serializer
//! the CLI uses — so a cold server answering sequential requests is
//! byte-identical to `dda batch` over the same inputs.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod http;
pub mod manifest;
pub mod render;
mod server;

pub use server::{ServeConfig, Server, ServerHandle};
