//! Batch-input loading shared by `dda batch` and the `/batch` endpoint:
//! `.loop` program files and manifest files (one program path per line).
//!
//! Every failure is *located*: the error string names the offending
//! path and the reason (unreadable file, parse error with a rendered
//! source excerpt), so both the CLI and the service can surface it
//! verbatim — `dda batch` exits nonzero with it, the service answers
//! 400 with it.

use std::path::{Path, PathBuf};

use dda_ir::{parse_program, passes, Program};

/// The accumulated batch: one label (what the user named the input —
/// the path or manifest entry as written) per parsed program.
#[derive(Debug, Default)]
pub struct BatchInput {
    /// Input labels, in order; these become the `"file"` field of the
    /// JSONL output.
    pub labels: Vec<String>,
    /// Parsed (and optionally normalized) programs, in order.
    pub programs: Vec<Program>,
}

/// Parses `source` as a DSL program and appends it under `label`.
///
/// # Errors
///
/// Returns the rendered parse error.
pub fn push_program_source(
    label: &str,
    source: &str,
    normalize: bool,
    out: &mut BatchInput,
) -> Result<(), String> {
    let mut program = parse_program(source).map_err(|e| e.render(source))?;
    if normalize {
        passes::normalize(&mut program);
    }
    out.labels.push(label.to_owned());
    out.programs.push(program);
    Ok(())
}

/// Reads and parses one `.loop` file and appends it under `label`.
///
/// # Errors
///
/// Returns a located error — `<path>: <io reason>` for unreadable
/// files, `<path>:\n<rendered parse error>` for malformed programs.
pub fn push_program_file(
    label: &str,
    path: &Path,
    normalize: bool,
    out: &mut BatchInput,
) -> Result<(), String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut program = parse_program(&source)
        .map_err(|e| format!("{}:\n{}", path.display(), e.render(&source)))?;
    if normalize {
        passes::normalize(&mut program);
    }
    out.labels.push(label.to_owned());
    out.programs.push(program);
    Ok(())
}

/// Loads every entry of a manifest: one program path per line, `#`
/// comments and blank lines skipped. Relative entries resolve against
/// `base`; the entry string as written is the program's label.
///
/// # Errors
///
/// The first missing, unreadable, or unparsable entry aborts the whole
/// load with its located error — a batch with a broken entry never
/// half-loads.
pub fn load_manifest_text(
    manifest: &str,
    base: &Path,
    normalize: bool,
    out: &mut BatchInput,
) -> Result<(), String> {
    for entry in manifest.lines() {
        let entry = entry.trim();
        if entry.is_empty() || entry.starts_with('#') {
            continue;
        }
        let path = if Path::new(entry).is_absolute() {
            PathBuf::from(entry)
        } else {
            base.join(entry)
        };
        push_program_file(entry, &path, normalize, out)?;
    }
    Ok(())
}

/// Loads one batch input file: a `.loop` path is a program itself;
/// anything else is a manifest whose relative entries resolve against
/// the manifest's own directory.
///
/// # Errors
///
/// Located, as in [`push_program_file`] / [`load_manifest_text`].
pub fn load_input_file(input: &str, normalize: bool, out: &mut BatchInput) -> Result<(), String> {
    if input.ends_with(".loop") {
        return push_program_file(input, Path::new(input), normalize, out);
    }
    let manifest = std::fs::read_to_string(input).map_err(|e| format!("{input}: {e}"))?;
    let base = Path::new(input)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    load_manifest_text(&manifest, &base, normalize, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dda_serve_manifest_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn loads_loop_files_and_manifests() {
        let dir = tmpdir("ok");
        std::fs::write(dir.join("a.loop"), "for i = 1 to 9 { a[i + 1] = a[i]; }").unwrap();
        std::fs::write(dir.join("b.loop"), "for i = 1 to 9 { b[i] = b[i]; }").unwrap();
        std::fs::write(dir.join("m.txt"), "# comment\na.loop\n\nb.loop\n").unwrap();

        let mut batch = BatchInput::default();
        load_input_file(dir.join("m.txt").to_str().unwrap(), true, &mut batch).unwrap();
        assert_eq!(batch.labels, vec!["a.loop", "b.loop"]);
        assert_eq!(batch.programs.len(), 2);
    }

    #[test]
    fn missing_manifest_entry_is_a_located_error() {
        let dir = tmpdir("missing");
        std::fs::write(dir.join("m.txt"), "nope.loop\n").unwrap();
        let mut batch = BatchInput::default();
        let err = load_input_file(dir.join("m.txt").to_str().unwrap(), true, &mut batch)
            .expect_err("missing entry must fail");
        assert!(err.contains("nope.loop"), "{err}");
        assert!(err.contains("No such file"), "{err}");
        assert!(batch.programs.is_empty(), "nothing half-loads");
    }

    #[test]
    fn parse_errors_carry_the_path_and_rendered_excerpt() {
        let dir = tmpdir("parse");
        std::fs::write(dir.join("bad.loop"), "for i = 1 to { }").unwrap();
        let mut batch = BatchInput::default();
        let err = push_program_file("bad.loop", &dir.join("bad.loop"), true, &mut batch)
            .expect_err("parse error must fail");
        assert!(err.contains("bad.loop"), "{err}");
        assert!(err.contains("parse error"), "{err}");
    }
}
