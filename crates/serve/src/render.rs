//! JSONL rendering of program reports — the one serializer shared by
//! `dda batch` and the `/analyze` / `/batch` service endpoints, so a
//! report rendered over the socket is byte-identical to the CLI's
//! output for the same analysis state.

use dda_core::ProgramReport;

/// Minimal JSON string escaping (quotes, backslashes, control chars).
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One JSONL record for a program's report.
#[must_use]
pub fn batch_json_line(file: &str, report: &ProgramReport) -> String {
    use std::fmt::Write as _;
    let mut line = format!("{{\"file\":\"{}\",\"pairs\":[", json_escape(file));
    for (i, pair) in report.pairs().iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        let answer = if pair.result.answer.is_independent() {
            "independent"
        } else if pair.result.answer.is_dependent() {
            "dependent"
        } else {
            "unknown"
        };
        let directions: Vec<String> = pair
            .direction_vectors
            .iter()
            .map(|v| format!("\"{}\"", json_escape(&v.to_string())))
            .collect();
        let _ = write!(
            line,
            "{{\"array\":\"{}\",\"a\":{},\"b\":{},\"answer\":\"{answer}\",\
             \"by\":\"{}\",\"cached\":{},\"directions\":[{}],\"distance\":\"{}\"}}",
            json_escape(&pair.array),
            pair.a_access,
            pair.b_access,
            json_escape(&pair.result.resolved_by.to_string()),
            pair.from_cache,
            directions.join(","),
            json_escape(&pair.distance.to_string()),
        );
    }
    let s = &report.stats;
    let _ = write!(
        line,
        "],\"stats\":{{\"pairs\":{},\"constant\":{},\"gcd_independent\":{},\
         \"assumed\":{},\"base_tests\":{},\"direction_tests\":{},\
         \"memo_queries\":{},\"memo_hits\":{},\"gcd_memo_queries\":{},\
         \"gcd_memo_hits\":{},\"independent_pairs\":{},\"dependent_pairs\":{},\
         \"direction_vectors_found\":{}}}}}",
        s.pairs,
        s.constant,
        s.gcd_independent,
        s.assumed,
        s.base_tests.total(),
        s.direction_tests.total(),
        s.memo_queries,
        s.memo_hits,
        s.gcd_memo_queries,
        s.gcd_memo_hits,
        s.independent_pairs,
        s.dependent_pairs,
        s.direction_vectors_found,
    );
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_json_metacharacters() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn renders_a_report_as_one_json_object() {
        let program = dda_ir::parse_program("for i = 1 to 9 { a[i + 1] = a[i]; }").unwrap();
        let mut analyzer = dda_core::DependenceAnalyzer::new();
        let report = analyzer.analyze_program(&program);
        let line = batch_json_line("k.loop", &report);
        assert!(
            line.starts_with("{\"file\":\"k.loop\",\"pairs\":["),
            "{line}"
        );
        assert!(line.contains("\"answer\":\"dependent\""), "{line}");
        assert!(line.ends_with("}}"), "{line}");
        assert!(!line.contains('\n'));
    }
}
