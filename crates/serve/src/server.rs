//! The long-running analysis server: a bounded accept queue feeding a
//! fixed pool of request workers, all sharing one warm
//! [`SharedMemo`] with bounded-capacity eviction, one
//! [`MetricsRegistry`], and one cumulative statistics accumulator.
//!
//! ```text
//! acceptor ──try_send──▶ bounded queue ──▶ worker × max_in_flight
//!    │ (full → 429 shed)                        │
//!    ▼                                          ▼
//! SIGTERM / /shutdown ──▶ drain ──▶ atomic memo persist
//! ```
//!
//! Admission control is two-layered: the queue bound caps waiting
//! connections (overflow is shed with 429 and counted), and the worker
//! count caps in-flight analysis. Each request runs under a
//! [`Deadline`] — the server default, or a per-request
//! `?deadline_ms=` override — and a timed-out request still answers
//! with sound conservative partial results (see
//! [`dda_engine::analyze_batch`]).

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

use dda_core::stats::AnalysisStats;
use dda_core::{MemoFormat, SharedMemo};
use dda_engine::{analyze_batch_traced, check_batch, graph_batch_traced, Deadline, EngineConfig};
use dda_graph::render::parallel_json_line;
use dda_obs::{
    CaptureStore, Counter, FlightRecorder, Gauge, MetricsRegistry, MetricsSnapshot, RequestOutcome,
    RequestSummary, ServiceSection, TraceContext, TraceId, TraceIdGen,
};

use crate::http::{self, Request, Response};
use crate::manifest::{self, BatchInput};
use crate::render;

/// Server configuration. `Default` gives a localhost server with an
/// unbounded memo table, no default deadline, and a small worker pool.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8053` (`:0` picks a free port).
    pub addr: String,
    /// Engine worker threads per request (`0` = one per core).
    pub workers: usize,
    /// Memo-table shard count (contention knob only).
    pub shards: usize,
    /// Memo capacity in bytes across both tables; `0` = unbounded.
    /// When bounded, second-chance eviction keeps resident bytes at or
    /// under the cap without ever changing verdicts (evicted entries
    /// are simply recomputed).
    pub memo_max_bytes: u64,
    /// Default per-request deadline in milliseconds; `0` = none.
    /// Requests may override with `?deadline_ms=N`.
    pub deadline_ms: u64,
    /// Memo persistence path: loaded at startup when present, written
    /// back atomically (temp file + rename) on graceful shutdown.
    pub memo_path: Option<PathBuf>,
    /// Request workers = maximum in-flight requests.
    pub max_in_flight: usize,
    /// Bounded accept queue depth; connections beyond it are shed with
    /// 429. Clamped to at least 1 — a zero-capacity (rendezvous) queue
    /// would shed whenever every worker is merely *between* requests,
    /// not actually backlogged.
    pub queue_depth: usize,
    /// Run the normalization prepasses on submitted programs (matches
    /// the CLI default).
    pub normalize: bool,
    /// Slow-request capture threshold in milliseconds; `0` disables the
    /// latency trigger (deadline-exceeded requests are still captured).
    /// Only effective with a `capture_dir`.
    pub slow_ms: u64,
    /// Directory for slow-request captures (`spans-<traceid>.jsonl` +
    /// folded flamegraph, bounded, oldest evicted). `None` disables
    /// capture entirely.
    pub capture_dir: Option<PathBuf>,
    /// Completed-request summaries remembered by the flight recorder
    /// ring (served at `GET /debug/requests`).
    pub flight_capacity: usize,
}

/// Captures kept on disk before the oldest is evicted.
const MAX_CAPTURES: usize = 64;

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:8053".into(),
            workers: 0,
            shards: 16,
            memo_max_bytes: 0,
            deadline_ms: 0,
            memo_path: None,
            max_in_flight: 4,
            queue_depth: 64,
            normalize: true,
            slow_ms: 0,
            capture_dir: None,
            flight_capacity: 256,
        }
    }
}

/// Endpoint labels for the by-(endpoint, outcome) request split.
/// `(accept)` is the acceptor itself (shed connections never reach an
/// endpoint); `(other)` covers unknown paths and unparsable requests.
const ENDPOINTS: [&str; 10] = [
    "/analyze",
    "/batch",
    "/parallel",
    "/metrics",
    "/healthz",
    "/shutdown",
    "/debug/requests",
    "/debug/memo",
    "(accept)",
    "(other)",
];

/// Outcome labels, indexed by [`outcome_index`].
const OUTCOMES: [&str; 4] = ["ok", "shed", "deadline", "error"];

fn endpoint_index(path: &str) -> usize {
    if path.starts_with("/debug/requests") {
        return 6;
    }
    ENDPOINTS
        .iter()
        .position(|&e| e == path)
        .unwrap_or(ENDPOINTS.len() - 1)
}

fn outcome_index(outcome: &str) -> usize {
    OUTCOMES.iter().position(|&o| o == outcome).unwrap_or(3)
}

/// Lock-free request counts per (endpoint, outcome) cell. Bounded
/// cardinality by construction: the endpoint set is the fixed
/// [`ENDPOINTS`] table, never attacker-controlled paths.
#[derive(Debug)]
struct RequestsByOutcome([[Counter; 4]; ENDPOINTS.len()]);

impl RequestsByOutcome {
    fn new() -> RequestsByOutcome {
        RequestsByOutcome(std::array::from_fn(|_| {
            std::array::from_fn(|_| Counter::new())
        }))
    }

    fn inc(&self, path: &str, outcome: &str) {
        self.0[endpoint_index(path)][outcome_index(outcome)].inc();
    }

    /// Non-zero cells as `(endpoint, outcome, count)`, in table order.
    fn snapshot(&self) -> Vec<(&'static str, &'static str, u64)> {
        let mut out = Vec::new();
        for (e, row) in self.0.iter().enumerate() {
            for (o, cell) in row.iter().enumerate() {
                let count = cell.get();
                if count > 0 {
                    out.push((ENDPOINTS[e], OUTCOMES[o], count));
                }
            }
        }
        out
    }
}

/// Shared server state: everything a request worker needs.
#[derive(Debug)]
struct State {
    engine: EngineConfig,
    memo: SharedMemo,
    obs: MetricsRegistry,
    stats: Mutex<AnalysisStats>,
    in_flight: Gauge,
    requests: Counter,
    shed: Counter,
    deadline_exceeded: Counter,
    requests_by: RequestsByOutcome,
    trace_ids: TraceIdGen,
    flight: FlightRecorder,
    capture: Option<CaptureStore>,
    shutdown: AtomicBool,
    default_deadline_ms: u64,
    max_in_flight: u64,
    normalize: bool,
}

/// A cloneable handle onto a running (or not-yet-run) server: request
/// shutdown and read service counters without HTTP. Used by tests and
/// by embedders that run the server on a background thread.
#[derive(Debug, Clone)]
pub struct ServerHandle(Arc<State>);

impl ServerHandle {
    /// Asks the accept loop to stop; in-flight and queued requests
    /// drain first, then the memo table is persisted.
    pub fn shutdown(&self) {
        self.0.shutdown.store(true, Ordering::SeqCst);
    }

    /// Requests handled so far (shed connections not included).
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.0.requests.get()
    }

    /// Requests being processed right now.
    #[must_use]
    pub fn in_flight(&self) -> i64 {
        self.0.in_flight.get()
    }

    /// Connections shed with 429 because the accept queue was full.
    #[must_use]
    pub fn shed(&self) -> u64 {
        self.0.shed.get()
    }

    /// Requests whose deadline expired (they answered with partials).
    #[must_use]
    pub fn deadline_exceeded(&self) -> u64 {
        self.0.deadline_exceeded.get()
    }

    /// Estimated resident bytes across both memo tables.
    #[must_use]
    pub fn memo_bytes(&self) -> u64 {
        self.0.memo.bytes()
    }

    /// Entries evicted from the memo tables so far.
    #[must_use]
    pub fn memo_evictions(&self) -> u64 {
        self.0.memo.evictions()
    }

    /// Completed requests recorded by the flight recorder.
    #[must_use]
    pub fn flight_recorded(&self) -> u64 {
        self.0.flight.recorded()
    }

    /// Slow-request captures written so far (0 without a capture dir).
    #[must_use]
    pub fn captures(&self) -> u64 {
        self.0.capture.as_ref().map_or(0, CaptureStore::captured)
    }

    /// Capture writes that failed and were degraded to this counter.
    #[must_use]
    pub fn capture_errors(&self) -> u64 {
        self.0.capture.as_ref().map_or(0, CaptureStore::errors)
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
    memo_path: Option<PathBuf>,
    memo_format: MemoFormat,
    memo_shards: usize,
    max_in_flight: usize,
    queue_depth: usize,
}

impl Server {
    /// Binds the listen socket, builds the shared memo table (loading
    /// `memo_path` when it exists), and prepares the worker state.
    ///
    /// # Errors
    ///
    /// Bind failures and unreadable/corrupt memo files, located.
    pub fn bind(cfg: &ServeConfig) -> Result<Server, String> {
        let listener = TcpListener::bind(&cfg.addr).map_err(|e| format!("{}: {e}", cfg.addr))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| format!("set_nonblocking: {e}"))?;
        let shards = cfg.shards.max(1);
        let memo = SharedMemo::with_capacity(shards, cfg.memo_max_bytes);
        // A memo loaded from a v3 archive persists back as v3 on
        // shutdown; v2 text stays v2 (one-way migration is explicit,
        // via `dda memo convert`).
        let mut memo_format = MemoFormat::V2Text;
        if let Some(path) = &cfg.memo_path {
            if path.exists() {
                memo_format = memo
                    .load_memo_file(path)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
            }
        }
        let engine = EngineConfig {
            workers: cfg.workers,
            shards,
            check: false,
            ..EngineConfig::default()
        };
        let engine_workers = if cfg.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            cfg.workers
        };
        let state = Arc::new(State {
            obs: MetricsRegistry::with_workers(engine_workers),
            engine,
            memo,
            stats: Mutex::new(AnalysisStats::default()),
            in_flight: Gauge::new(),
            requests: Counter::new(),
            shed: Counter::new(),
            deadline_exceeded: Counter::new(),
            requests_by: RequestsByOutcome::new(),
            trace_ids: TraceIdGen::new(),
            flight: FlightRecorder::with_capacity(cfg.flight_capacity),
            capture: cfg
                .capture_dir
                .clone()
                .map(|dir| CaptureStore::new(dir, cfg.slow_ms, MAX_CAPTURES)),
            shutdown: AtomicBool::new(false),
            default_deadline_ms: cfg.deadline_ms,
            max_in_flight: cfg.max_in_flight.max(1) as u64,
            normalize: cfg.normalize,
        });
        Ok(Server {
            listener,
            state,
            memo_path: cfg.memo_path.clone(),
            memo_format,
            memo_shards: shards,
            max_in_flight: cfg.max_in_flight.max(1),
            queue_depth: cfg.queue_depth,
        })
    }

    /// The bound address (useful with `:0`).
    ///
    /// # Errors
    ///
    /// Propagates the socket error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for shutdown and counter reads.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle(Arc::clone(&self.state))
    }

    /// Runs the accept loop until shutdown (SIGTERM/SIGINT, a
    /// `/shutdown` request, or [`ServerHandle::shutdown`]), then drains
    /// queued and in-flight requests and atomically persists the memo
    /// table when a `memo_path` is configured.
    ///
    /// # Errors
    ///
    /// Fatal accept errors and memo-persistence failures.
    pub fn run(self) -> Result<(), String> {
        #[cfg(unix)]
        signals::install();

        let (tx, rx) = mpsc::sync_channel::<TcpStream>(self.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let mut workers = Vec::with_capacity(self.max_in_flight);
        for _ in 0..self.max_in_flight {
            let rx = Arc::clone(&rx);
            let state = Arc::clone(&self.state);
            workers.push(std::thread::spawn(move || loop {
                // Hold the lock only to dequeue, not while handling.
                let next = rx.lock().expect("queue lock").recv();
                match next {
                    Ok(stream) => handle_connection(&state, stream),
                    Err(_) => break, // acceptor dropped the sender: drain done
                }
            }));
        }

        loop {
            let stop = self.state.shutdown.load(Ordering::SeqCst);
            #[cfg(unix)]
            let stop = stop || signals::triggered();
            if stop {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(mpsc::TrySendError::Full(stream)) => {
                        self.state.shed.inc();
                        self.state.requests_by.inc("(accept)", "shed");
                        shed_connection(stream);
                    }
                    Err(mpsc::TrySendError::Disconnected(_)) => break,
                },
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(format!("accept: {e}")),
            }
        }

        // Graceful drain: close the queue, let the workers finish
        // everything already accepted, then persist the warm table.
        drop(tx);
        for worker in workers {
            let _ = worker.join();
        }
        if let Some(path) = &self.memo_path {
            match self.memo_format {
                MemoFormat::V2Text => self.state.memo.save_memo_file(path),
                MemoFormat::V3Binary => self.state.memo.save_memo_file_v3(path, self.memo_shards),
            }
            .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        Ok(())
    }
}

/// SIGTERM/SIGINT handling without external crates: a `signal(2)` FFI
/// binding flips an atomic the accept loop polls. Store-only handler —
/// async-signal-safe by construction.
#[cfg(unix)]
mod signals {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    pub fn install() {
        unsafe {
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
        }
    }

    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }
}

/// Refuses a connection with 429 without blocking the acceptor on
/// analysis work. The request bytes already in flight are drained
/// (briefly, bounded by a short timeout) before the socket drops —
/// closing with unread data would RST the peer before it reads the
/// response.
fn shed_connection(mut stream: TcpStream) {
    let resp = Response::text(429, "server busy: accept queue full\n");
    let _ = http::write_response(&mut stream, &resp);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut sink = [0u8; 4096];
    while let Ok(n) = std::io::Read::read(&mut stream, &mut sink) {
        if n == 0 {
            break;
        }
    }
}

fn handle_connection(state: &State, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    state.in_flight.inc();
    state.requests.inc();
    let (path, resp) = match http::read_request(&mut stream) {
        Err(e) => ("(other)".to_owned(), Response::text(400, &format!("{e}\n"))),
        Ok(req) => (req.path.clone(), route(state, &req)),
    };
    // Outcome classification for the (endpoint, outcome) split: a
    // deadline-exceeded analysis still answers 200, so the header — not
    // the status — marks it.
    let outcome = if resp
        .headers
        .iter()
        .any(|(n, _)| n == "X-DDA-Deadline-Exceeded")
    {
        "deadline"
    } else if resp.status < 400 {
        "ok"
    } else {
        "error"
    };
    state.requests_by.inc(&path, outcome);
    let _ = http::write_response(&mut stream, &resp);
    state.in_flight.dec();
}

fn route(state: &State, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("POST", "/analyze") => analyze(state, req, InputKind::Program, Output::Reports),
        ("POST", "/batch") => analyze(state, req, InputKind::Manifest, Output::Reports),
        ("POST", "/parallel") => {
            // Body is one program by default; `?manifest=1` switches to
            // a manifest body, mirroring the /analyze–/batch split.
            let kind = if req.query.get("manifest").is_some_and(|v| v != "0") {
                InputKind::Manifest
            } else {
                InputKind::Program
            };
            analyze(state, req, kind, Output::Parallel)
        }
        ("GET", "/metrics") => Response::ok(metrics_text(state), "text/plain; version=0.0.4"),
        ("GET", "/healthz") => Response::ok("ok\n".into(), "text/plain"),
        ("GET", "/debug/requests") => Response::ok(state.flight.to_jsonl(), "application/x-ndjson"),
        ("GET", "/debug/memo") => Response::ok(debug_memo_json(state), "application/json"),
        ("GET", p) if p.starts_with("/debug/requests/") => {
            debug_request(state, &p["/debug/requests/".len()..])
        }
        ("GET" | "POST", "/shutdown") => {
            state.shutdown.store(true, Ordering::SeqCst);
            Response::ok("shutting down\n".into(), "text/plain")
        }
        ("GET" | "POST", _) => Response::text(404, "not found\n"),
        _ => Response::text(405, "method not allowed\n"),
    }
}

/// `GET /debug/requests/<traceid>`: one slow-request capture's span
/// JSONL, read back from the capture directory.
fn debug_request(state: &State, traceid: &str) -> Response {
    let Some(id) = TraceId::from_hex(traceid) else {
        return Response::text(400, &format!("bad trace id `{traceid}`\n"));
    };
    let Some(capture) = &state.capture else {
        return Response::text(404, "capture disabled: no --capture-dir configured\n");
    };
    match capture.read(id) {
        Some(body) => Response::ok(body, "application/x-ndjson"),
        None => Response::text(404, &format!("no capture for trace {id}\n")),
    }
}

/// `GET /debug/memo`: shard occupancy, byte usage, and archive fault
/// stats for both memo tables, plus flight-recorder/capture health.
fn debug_memo_json(state: &State) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("{\"tables\":[");
    let table = |out: &mut String, name: &str, c: dda_core::MemoCounters, shards: Vec<u64>| {
        let _ = write!(
            out,
            "{{\"table\":\"{name}\",\"entries\":{},\"bytes\":{},\"capacity_bytes\":{},\
             \"queries\":{},\"hits\":{},\"warm_loads\":{},\"evictions\":{},\"shard_ops\":[",
            c.entries, c.bytes, c.capacity_bytes, c.queries, c.hits, c.warm_loads, c.evictions
        );
        for (j, ops) in shards.into_iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{ops}");
        }
        out.push_str("]}");
    };
    table(
        &mut out,
        "full",
        state.memo.full.counters(),
        state.memo.full.shard_ops(),
    );
    out.push(',');
    table(
        &mut out,
        "gcd",
        state.memo.gcd.counters(),
        state.memo.gcd.shard_ops(),
    );
    let load = state.memo.memo_load_stats();
    let _ = write!(
        out,
        "],\"load\":{{\"files\":{},\"records\":{},\"bytes\":{},\"nanos\":{},\
         \"archive_faults\":{}}}",
        load.files, load.records, load.bytes, load.nanos, load.archive_faults
    );
    let _ = write!(
        out,
        ",\"flight\":{{\"capacity\":{},\"recorded\":{},\"dropped\":{},\
         \"captured\":{},\"capture_errors\":{}}}}}",
        state.flight.capacity(),
        state.flight.recorded(),
        state.flight.dropped(),
        state.capture.as_ref().map_or(0, CaptureStore::captured),
        state.capture.as_ref().map_or(0, CaptureStore::errors),
    );
    out
}

/// What the request body holds.
enum InputKind {
    /// One `.loop` program (label from `?file=`, default `-`).
    Program,
    /// A batch manifest; relative entries resolve against the server's
    /// working directory.
    Manifest,
}

/// What the response stream carries.
enum Output {
    /// Per-pair dependence reports (`/analyze`, `/batch`).
    Reports,
    /// Per-loop parallelism verdicts from the dependence graph
    /// (`/parallel`), byte-identical to `dda parallel` on a cold memo.
    Parallel,
}

fn analyze(state: &State, req: &Request, kind: InputKind, output: Output) -> Response {
    // Every analysis response carries its trace id; an inbound
    // `X-DDA-Trace-Id` (16 hex digits) is adopted for correlation,
    // otherwise one is generated.
    let trace_id = req
        .header("x-dda-trace-id")
        .and_then(TraceId::from_hex)
        .unwrap_or_else(|| state.trace_ids.next_id());
    let mut resp = analyze_traced(state, req, kind, output, trace_id);
    resp.headers
        .push(("X-DDA-Trace-Id".into(), trace_id.to_string()));
    resp
}

fn analyze_traced(
    state: &State,
    req: &Request,
    kind: InputKind,
    output: Output,
    trace_id: TraceId,
) -> Response {
    let endpoint = ENDPOINTS[endpoint_index(&req.path)];
    let mut input = BatchInput::default();
    let loaded = match kind {
        InputKind::Program => {
            let label = req.query.get("file").map_or("-", String::as_str);
            manifest::push_program_source(label, &req.body, state.normalize, &mut input)
        }
        InputKind::Manifest => {
            manifest::load_manifest_text(&req.body, Path::new(""), state.normalize, &mut input)
        }
    };
    if let Err(e) = loaded {
        return Response::text(400, &format!("{e}\n"));
    }

    let deadline = match req.query.get("deadline_ms") {
        None => deadline_from_ms(state.default_deadline_ms),
        Some(v) => match v.parse::<u64>() {
            Ok(ms) => deadline_from_ms(ms),
            Err(_) => return Response::text(400, &format!("bad deadline_ms `{v}`\n")),
        },
    };

    // Per-request attribution: the trace context tees the engine's
    // telemetry into its local delta, and the memo counters are
    // differenced around the batch.
    let ctx = TraceContext::new(trace_id);
    let faults_before = state.memo.memo_load_stats().archive_faults;
    let bytes_before = state.memo.bytes();
    let start = Instant::now();
    let (out, graphs) = match output {
        Output::Reports => (
            analyze_batch_traced(
                &state.engine,
                &state.memo,
                &state.obs,
                &input.programs,
                deadline,
                Some(&ctx),
            ),
            None,
        ),
        Output::Parallel => {
            let g = graph_batch_traced(
                &state.engine,
                &state.memo,
                &state.obs,
                &input.programs,
                deadline,
                Some(&ctx),
            );
            (g.batch, Some(g.graphs))
        }
    };
    if out.deadline_exceeded {
        state.deadline_exceeded.inc();
    }
    state.stats.lock().expect("stats lock").add(&out.stats);

    let resp = 'resp: {
        if req.query.get("check").is_some_and(|v| v != "0") {
            if out.deadline_exceeded {
                break 'resp Response::text(
                    422,
                    "deadline exceeded: partial results are conservative, not checkable\n",
                );
            }
            let summary = check_batch(&state.engine, &state.obs, &input.programs, &out.reports);
            if !summary.failures.is_empty() {
                break 'resp Response::text(
                    422,
                    &format!("check: {} certificate failure(s)\n", summary.failures.len()),
                );
            }
        }

        let mut body = String::new();
        if let Some(graphs) = &graphs {
            for (label, graph) in input.labels.iter().zip(graphs) {
                body.push_str(&parallel_json_line(label, graph));
                body.push('\n');
            }
        } else {
            for (label, report) in input.labels.iter().zip(&out.reports) {
                body.push_str(&render::batch_json_line(label, report));
                body.push('\n');
            }
        }
        let mut resp = Response::ok(body, "application/x-ndjson");
        if out.deadline_exceeded {
            resp.headers
                .push(("X-DDA-Deadline-Exceeded".into(), "true".into()));
        }
        resp
    };

    // Flight-record the completed request. Everything here is either
    // lock-free (ring push) or post-response best-effort I/O (capture),
    // so the analysis path never blocks on observability.
    let wall_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let mut summary = RequestSummary::blank(trace_id, endpoint).with_local(ctx.local());
    summary.outcome = if out.deadline_exceeded {
        RequestOutcome::DeadlineExceeded
    } else if resp.status >= 400 {
        RequestOutcome::Error
    } else {
        RequestOutcome::Ok
    };
    summary.status = resp.status;
    summary.wall_nanos = wall_nanos;
    summary.programs = input.programs.len() as u64;
    summary.pairs = out.stats.pairs;
    summary.spliced = out.spliced;
    summary.resolved = out.resolved;
    summary.archive_faults = state
        .memo
        .memo_load_stats()
        .archive_faults
        .saturating_sub(faults_before);
    // May go negative under concurrent eviction by another request.
    summary.memo_bytes_delta = state.memo.bytes() as i64 - bytes_before as i64;
    if let Some(capture) = &state.capture {
        if capture.should_capture(&summary) {
            capture.capture(&summary);
        }
    }
    state.flight.push(summary);
    resp
}

fn deadline_from_ms(ms: u64) -> Deadline {
    if ms == 0 {
        Deadline::none()
    } else {
        Deadline::after(Duration::from_millis(ms))
    }
}

fn metrics_text(state: &State) -> String {
    let service = ServiceSection {
        in_flight: state.in_flight.get(),
        max_in_flight: state.max_in_flight,
        requests: state.requests.get(),
        shed: state.shed.get(),
        deadline_exceeded: state.deadline_exceeded.get(),
        requests_by: state.requests_by.snapshot(),
    };
    let stats = state.stats.lock().expect("stats lock");
    MetricsSnapshot::from_registry(&state.obs)
        .with_pairs(&stats)
        .with_memo_table(
            "full",
            state.memo.full.counters(),
            state.memo.full.shard_ops(),
        )
        .with_memo_table("gcd", state.memo.gcd.counters(), state.memo.gcd.shard_ops())
        .with_memo_load(state.memo.memo_load_stats())
        .with_service(service)
        .to_prometheus()
}
