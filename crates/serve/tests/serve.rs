//! End-to-end tests of the analysis service over real sockets:
//! JSONL parity with the CLI serializer, concurrent-client verdict
//! identity, bounded-memory eviction, deadlines, admission control,
//! and graceful shutdown with atomic memo persistence.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;

use dda_core::{AnalyzerConfig, DependenceAnalyzer, SharedMemo};
use dda_serve::render::batch_json_line;
use dda_serve::{ServeConfig, Server, ServerHandle};
use proptest::prelude::*;

/// Binds a server on a free port and runs it on a background thread.
fn start(cfg: ServeConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&cfg).expect("bind");
    let addr = server.local_addr().expect("local addr");
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

/// Stops a started server and joins its thread.
fn stop(addr: SocketAddr, handle: &ServerHandle, join: std::thread::JoinHandle<()>) {
    handle.shutdown();
    // Nudge the acceptor out of its poll sleep.
    let _ = TcpStream::connect(addr);
    join.join().expect("server thread");
}

/// One raw HTTP exchange; returns (status, whole head, body).
fn request(addr: SocketAddr, method: &str, target: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let msg = format!(
        "{method} {target} HTTP/1.1\r\nHost: dda\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("recv");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header separator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_owned(), body.to_owned())
}

/// What the serial reference analyzer (the engine's semantics) says,
/// rendered through the same JSONL serializer the service uses.
fn serial_lines(labelled: &[(&str, &str)]) -> Vec<String> {
    let mut analyzer = DependenceAnalyzer::with_config(AnalyzerConfig::default());
    labelled
        .iter()
        .map(|(label, source)| {
            let mut program = dda_ir::parse_program(source).expect("test programs parse");
            dda_ir::passes::normalize(&mut program);
            batch_json_line(label, &analyzer.analyze_program(&program))
        })
        .collect()
}

/// Strips the fields that legitimately vary with memo-table warmth —
/// `"by"` (memo vs fresh resolution), `"cached"`, and the per-program
/// stats object — leaving the semantic verdict: array, accesses,
/// answer, direction vectors, distance.
fn semantic_view(line: &str) -> String {
    let mut s = line
        .split_once("],\"stats\":")
        .map_or(line, |(pairs, _)| pairs)
        .to_owned();
    for marker in [",\"by\":\"", ",\"cached\":"] {
        while let Some(start) = s.find(marker) {
            let rest = &s[start + marker.len()..];
            let len = rest.find(",\"").expect("another field follows");
            s.replace_range(start..start + marker.len() + len, "");
        }
    }
    s
}

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dda_serve_test_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const FLOW: &str = "for i = 1 to 100 { a[i + 1] = a[i]; }";
const COUPLED: &str =
    "for i = 1 to 10 { for j = 1 to 10 { b[2 * i + j] = b[i + 2 * j + 1] + 1; } }";
const INDEP: &str = "for i = 1 to 50 { c[2 * i] = c[2 * i + 1]; }";

#[test]
fn healthz_and_metrics_answer() {
    let (addr, handle, join) = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    let (status, _, body) = request(addr, "GET", "/healthz", "");
    assert_eq!((status, body.as_str()), (200, "ok\n"));

    let (status, _, body) = request(addr, "POST", "/analyze?file=flow.loop", FLOW);
    assert_eq!(status, 200, "{body}");

    let (status, _, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let exp = dda_obs::prom::parse_exposition(&metrics).expect("valid exposition");
    for name in [
        "dda_serve_requests_total",
        "dda_serve_in_flight_requests",
        "dda_serve_max_in_flight_requests",
        "dda_memo_bytes",
        "dda_memo_capacity_bytes",
        "dda_memo_evictions_total",
        "dda_pairs_total",
    ] {
        assert!(
            exp.samples.iter().any(|s| s.name == name),
            "missing {name} in:\n{metrics}"
        );
    }

    let (status, _, _) = request(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _, _) = request(addr, "PUT", "/analyze", FLOW);
    assert_eq!(status, 405);

    stop(addr, &handle, join);
}

#[test]
fn cold_sequential_requests_match_the_cli_serializer_byte_for_byte() {
    let (addr, handle, join) = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    // A cold server answering sequential requests replays exactly the
    // serial analyzer's history, so the JSONL must be byte-identical —
    // `cached`, `by`, stats and all.
    let labelled = [
        ("flow.loop", FLOW),
        ("coupled.loop", COUPLED),
        ("indep.loop", INDEP),
    ];
    let want = serial_lines(&labelled);
    for ((label, source), want_line) in labelled.iter().zip(&want) {
        let (status, _, body) = request(
            addr,
            "POST",
            &format!("/analyze?file={label}&check=1"),
            source,
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(body, format!("{want_line}\n"), "label {label}");
    }
    assert_eq!(handle.deadline_exceeded(), 0);
    stop(addr, &handle, join);
}

#[test]
fn batch_manifests_resolve_and_located_errors_come_back_as_400() {
    let dir = tmpdir("batch");
    std::fs::write(dir.join("x.loop"), FLOW).unwrap();
    std::fs::write(dir.join("y.loop"), INDEP).unwrap();
    let manifest = format!(
        "# absolute entries, as a remote client would submit\n{}\n{}\n",
        dir.join("x.loop").display(),
        dir.join("y.loop").display()
    );

    let (addr, handle, join) = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    let (status, _, body) = request(addr, "POST", "/batch?check=1", &manifest);
    assert_eq!(status, 200, "{body}");
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].contains("x.loop"), "{body}");
    assert!(lines[1].contains("y.loop"), "{body}");

    let bad = format!("{}\n", dir.join("missing.loop").display());
    let (status, _, body) = request(addr, "POST", "/batch", &bad);
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("missing.loop"), "{body}");
    assert!(body.contains("No such file"), "{body}");

    let (status, _, body) = request(addr, "POST", "/analyze", "for i = 1 to { }");
    assert_eq!(status, 400);
    assert!(body.contains("parse error"), "{body}");

    stop(addr, &handle, join);
}

#[test]
fn eviction_under_a_byte_cap_never_changes_verdicts() {
    // A cap small enough that three distinct programs cannot all stay
    // resident. Eviction may only cost recomputation, never answers.
    let (addr, handle, join) = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        memo_max_bytes: 2048,
        ..ServeConfig::default()
    });
    let labelled = [
        ("flow.loop", FLOW),
        ("coupled.loop", COUPLED),
        ("indep.loop", INDEP),
    ];
    let want: Vec<String> = serial_lines(&labelled)
        .iter()
        .map(|l| semantic_view(l))
        .collect();
    for round in 0..4 {
        for ((label, source), want_line) in labelled.iter().zip(&want) {
            let (status, _, body) =
                request(addr, "POST", &format!("/analyze?file={label}"), source);
            assert_eq!(status, 200, "{body}");
            assert_eq!(
                semantic_view(body.trim_end()),
                *want_line,
                "round {round}, label {label}"
            );
        }
    }
    assert!(
        handle.memo_evictions() > 0,
        "the cap never forced an eviction"
    );
    assert!(
        handle.memo_bytes() <= 2048,
        "resident bytes {} exceed the cap",
        handle.memo_bytes()
    );
    stop(addr, &handle, join);
}

#[test]
fn a_tight_deadline_returns_conservative_partials_not_a_hang() {
    // ~60 statements over one array: ~3.5k pairs, far more than 1ms of
    // work, so the deadline trips mid-batch.
    let mut big = String::from("for i = 1 to 100 { for j = 1 to 100 { ");
    for k in 0..60 {
        big.push_str(&format!("a[i + {k}][j] = a[i][j + {k}] + 1; "));
    }
    big.push_str("} }");

    let (addr, handle, join) = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..ServeConfig::default()
    });
    let (status, head, body) = request(addr, "POST", "/analyze?deadline_ms=1", &big);
    assert_eq!(status, 200, "{body}");
    assert!(
        head.contains("X-DDA-Deadline-Exceeded: true"),
        "expected the deadline header:\n{head}"
    );
    assert!(body.contains("\"assumed\":"), "{body}");
    assert_eq!(handle.deadline_exceeded(), 1);

    // Checking partial results is refused: assumed pairs carry no
    // checkable certificate by design.
    let (status, _, body) = request(addr, "POST", "/analyze?deadline_ms=1&check=1", &big);
    assert_eq!(status, 422, "{body}");

    // The same program without a deadline completes and self-checks.
    let (status, head, _) = request(addr, "POST", "/analyze?check=1", &big);
    assert_eq!(status, 200);
    assert!(!head.contains("X-DDA-Deadline-Exceeded"), "{head}");

    stop(addr, &handle, join);
}

#[test]
fn admission_control_sheds_with_429_when_saturated() {
    let (addr, handle, join) = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        max_in_flight: 1,
        queue_depth: 1, // the minimum (0 is clamped up): one waiter, then shed
        ..ServeConfig::default()
    });
    let healthz = "GET /healthz HTTP/1.1\r\nHost: dda\r\nContent-Length: 0\r\n\r\n";

    // Occupy the only worker: connect and go silent — it blocks in
    // read_request until we finish the exchange. Wait until the worker
    // has demonstrably picked the connection up.
    let mut holder = TcpStream::connect(addr).expect("connect holder");
    for _ in 0..250 {
        if handle.in_flight() == 1 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(handle.in_flight(), 1, "worker never picked up the holder");

    // Fill the single queue slot. The acceptor is sequential, so this
    // connection is enqueued before anything accepted later.
    let mut queued = TcpStream::connect(addr).expect("connect queued");
    queued.write_all(healthz.as_bytes()).expect("send queued");

    // Worker busy + queue full: the next connection is shed.
    let (status, _, body) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("busy"), "{body}");
    assert!(handle.shed() >= 1);

    // Release the worker; it finishes the held request, then drains the
    // queued one, and the service takes new connections again.
    holder
        .write_all(healthz.as_bytes())
        .expect("send held request");
    let mut reply = String::new();
    holder.read_to_string(&mut reply).expect("recv held reply");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    let mut reply = String::new();
    queued
        .read_to_string(&mut reply)
        .expect("recv queued reply");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    let (status, _, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);

    stop(addr, &handle, join);
}

#[test]
fn graceful_shutdown_drains_and_persists_the_memo_atomically() {
    let dir = tmpdir("persist");
    let memo_path = dir.join("memo.dda");
    let cfg = ServeConfig {
        addr: "127.0.0.1:0".into(),
        memo_path: Some(memo_path.clone()),
        ..ServeConfig::default()
    };
    let (addr, handle, join) = start(cfg.clone());
    let (status, _, first) = request(addr, "POST", "/analyze?file=flow.loop", FLOW);
    assert_eq!(status, 200);
    let (status, _, _) = request(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    join.join().expect("server thread");
    drop(handle);

    assert!(memo_path.exists(), "shutdown must persist the memo");
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n != "memo.dda")
        .collect();
    assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");

    let memo = SharedMemo::new(4);
    memo.load_memo_file(&memo_path)
        .expect("persisted memo loads");
    assert!(memo.full.unique_entries() > 0, "warm entries survived");

    // A restarted server is warm: same verdicts, now served from memo.
    let (addr2, handle2, join2) = start(cfg);
    let (status, _, warm) = request(addr2, "POST", "/analyze?file=flow.loop", FLOW);
    assert_eq!(status, 200);
    assert_eq!(
        semantic_view(warm.trim_end()),
        semantic_view(first.trim_end())
    );
    assert!(warm.contains("\"cached\":true"), "{warm}");
    stop(addr2, &handle2, join2);
}

/// A server started on a v3 binary memo serves warm verdicts, exposes
/// load/fault metrics, and persists back in v3 on shutdown.
#[test]
fn v3_memo_restart_serves_warm_and_persists_v3() {
    let dir = tmpdir("persist_v3");
    let v2_path = dir.join("memo.dda");
    let v3_path = dir.join("memo.dda3");

    // Produce a warm v2 memo the usual way, then convert it to v3.
    let cfg_v2 = ServeConfig {
        addr: "127.0.0.1:0".into(),
        memo_path: Some(v2_path.clone()),
        ..ServeConfig::default()
    };
    let (addr, handle, join) = start(cfg_v2);
    let (status, _, cold) = request(addr, "POST", "/analyze?file=flow.loop", FLOW);
    assert_eq!(status, 200);
    stop(addr, &handle, join);
    let memo = SharedMemo::new(4);
    memo.load_memo_file(&v2_path).expect("v2 loads");
    memo.save_memo_file_v3(&v3_path, 4).expect("v3 saves");

    // Restart on the archive: warm verdicts, load metrics exposed.
    let cfg_v3 = ServeConfig {
        addr: "127.0.0.1:0".into(),
        memo_path: Some(v3_path.clone()),
        ..ServeConfig::default()
    };
    let (addr2, handle2, join2) = start(cfg_v3);
    let (status, _, warm) = request(addr2, "POST", "/analyze?file=flow.loop", FLOW);
    assert_eq!(status, 200);
    assert_eq!(
        semantic_view(warm.trim_end()),
        semantic_view(cold.trim_end())
    );
    assert!(warm.contains("\"cached\":true"), "{warm}");

    let (status, _, metrics) = request(addr2, "GET", "/metrics", "");
    assert_eq!(status, 200);
    for name in [
        "dda_memo_load_files_total",
        "dda_memo_load_records_total",
        "dda_memo_load_bytes_total",
        "dda_memo_archive_faults_total",
        "dda_incremental_spliced_total",
    ] {
        assert!(metrics.contains(name), "missing {name} in:\n{metrics}");
    }

    let (status, _, _) = request(addr2, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    join2.join().expect("server thread");
    drop(handle2);

    // The archive stays v3 across restarts — no silent downgrade.
    assert!(dda_core::persist_v3::is_v3_file(&v3_path).expect("readable"));
    let reread = SharedMemo::new(4);
    assert_eq!(
        reread.load_memo_file(&v3_path).expect("persisted v3 loads"),
        dda_core::MemoFormat::V3Binary
    );
}

/// Satellite 3: N concurrent clients hammering one warm server get
/// verdicts bit-identical to the serial analyzer, across worker and
/// shard settings.
#[test]
fn concurrent_clients_get_serial_verdicts_across_workers_and_shards() {
    let corpus = [
        ("flow.loop", FLOW),
        ("coupled.loop", COUPLED),
        ("indep.loop", INDEP),
    ];
    let want: Vec<String> = serial_lines(&corpus)
        .iter()
        .map(|l| semantic_view(l))
        .collect();
    for (workers, shards) in [(1usize, 1usize), (4, 8)] {
        let (addr, handle, join) = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            shards,
            max_in_flight: 4,
            ..ServeConfig::default()
        });
        let clients: Vec<_> = (0..4)
            .map(|_| {
                let want = want.clone();
                std::thread::spawn(move || {
                    for ((label, source), want_line) in corpus.iter().zip(&want) {
                        let (status, _, body) =
                            request(addr, "POST", &format!("/analyze?file={label}"), source);
                        assert_eq!(status, 200, "{body}");
                        assert_eq!(
                            semantic_view(body.trim_end()),
                            *want_line,
                            "workers={workers} shards={shards} label={label}"
                        );
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client thread");
        }
        assert_eq!(handle.requests(), 12);
        stop(addr, &handle, join);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Satellite 3, generalized: random small programs submitted by
    /// concurrent clients to a shared warm server still answer with the
    /// serial analyzer's verdicts — memoization across requests and
    /// worker parallelism are invisible in the semantics.
    #[test]
    fn random_programs_survive_concurrency_and_warmth(
        seeds in proptest::collection::vec((1i64..=4, -3i64..=3, 2i64..=6), 2..=4)
    ) {
        let sources: Vec<(String, String)> = seeds
            .iter()
            .enumerate()
            .map(|(i, (stride, offset, hi))| {
                (
                    format!("p{i}.loop"),
                    format!(
                        "for i = 1 to {hi} {{ a[{stride} * i + {offset}] = a[i] + 1; }}"
                    ),
                )
            })
            .collect();
        let labelled: Vec<(&str, &str)> =
            sources.iter().map(|(l, s)| (l.as_str(), s.as_str())).collect();
        let want: Vec<String> =
            serial_lines(&labelled).iter().map(|l| semantic_view(l)).collect();

        let (addr, handle, join) = start(ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            shards: 4,
            ..ServeConfig::default()
        });
        let clients: Vec<_> = (0..3)
            .map(|_| {
                let sources = sources.clone();
                let want = want.clone();
                std::thread::spawn(move || {
                    for ((label, source), want_line) in sources.iter().zip(&want) {
                        let (status, _, body) =
                            request(addr, "POST", &format!("/analyze?file={label}"), source);
                        assert_eq!(status, 200, "{body}");
                        assert_eq!(semantic_view(body.trim_end()), *want_line, "{label}");
                    }
                })
            })
            .collect();
        for c in clients {
            c.join().expect("client thread");
        }
        stop(addr, &handle, join);
    }
}

/// Like [`request`] but with one extra request header.
fn request_with_header(
    addr: SocketAddr,
    method: &str,
    target: &str,
    header: &str,
    body: &str,
) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let msg = format!(
        "{method} {target} HTTP/1.1\r\nHost: dda\r\n{header}\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).expect("send");
    let mut reply = String::new();
    stream.read_to_string(&mut reply).expect("recv");
    let (head, body) = reply.split_once("\r\n\r\n").expect("header separator");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, head.to_owned(), body.to_owned())
}

/// The `X-DDA-Trace-Id` value from a response head.
fn trace_id_of(head: &str) -> String {
    head.lines()
        .find_map(|l| l.strip_prefix("X-DDA-Trace-Id: "))
        .expect("analysis responses carry a trace id")
        .trim()
        .to_owned()
}

#[test]
fn debug_endpoints_expose_traced_requests_and_slow_captures() {
    let dir = std::env::temp_dir().join(format!("dda-serve-capture-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (addr, handle, join) = start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        capture_dir: Some(dir.clone()),
        flight_capacity: 8,
        ..ServeConfig::default()
    });

    // An inbound trace id is honored and echoed back.
    let (status, head, _) = request_with_header(
        addr,
        "POST",
        "/analyze",
        "X-DDA-Trace-Id: 00000000000000ab",
        "for i = 1 to 9 { a[i + 1] = a[i]; }",
    );
    assert_eq!(status, 200);
    assert_eq!(trace_id_of(&head), "00000000000000ab");

    // Without the header the service assigns a fresh nonzero id.
    let (status, head, _) = request(addr, "POST", "/analyze", "for i = 1 to 9 { a[i] = a[i]; }");
    assert_eq!(status, 200);
    let assigned = trace_id_of(&head);
    assert_eq!(assigned.len(), 16);
    assert_ne!(assigned, "0000000000000000");

    // A deadline-exceeded request is always captured, latency trigger
    // or not.
    let mut big = String::from("for i = 1 to 100 { for j = 1 to 100 { ");
    for k in 0..60 {
        big.push_str(&format!("a[i + {k}][j] = a[i][j + {k}] + 1; "));
    }
    big.push_str("} }");
    let (status, head, _) = request(addr, "POST", "/analyze?deadline_ms=1", &big);
    assert_eq!(status, 200);
    assert!(head.contains("X-DDA-Deadline-Exceeded: true"), "{head}");
    let slow_id = trace_id_of(&head);

    // The ring lists all three requests, newest last, with outcomes.
    let (status, _, ring) = request(addr, "GET", "/debug/requests", "");
    assert_eq!(status, 200);
    let lines: Vec<&str> = ring.lines().collect();
    assert_eq!(lines.len(), 3, "{ring}");
    assert!(
        lines[0].contains("\"trace\":\"00000000000000ab\""),
        "{ring}"
    );
    assert!(lines[0].contains("\"outcome\":\"ok\""), "{ring}");
    assert!(
        lines[2].contains(&format!("\"trace\":\"{slow_id}\"")),
        "{ring}"
    );
    assert!(lines[2].contains("\"outcome\":\"deadline\""), "{ring}");
    assert_eq!(handle.flight_recorded(), 3);

    // The slow request's span capture is retrievable by trace id and
    // every line of it carries that id.
    assert_eq!(handle.captures(), 1);
    let (status, _, capture) = request(addr, "GET", &format!("/debug/requests/{slow_id}"), "");
    assert_eq!(status, 200, "{capture}");
    assert!(!capture.is_empty());
    for line in capture.lines() {
        assert!(line.contains(&format!("\"trace\":\"{slow_id}\"")), "{line}");
    }
    assert!(
        capture.contains("\"name\":\"request:/analyze\""),
        "{capture}"
    );

    // Unknown ids 404, malformed ids 400.
    let (status, _, _) = request(addr, "GET", "/debug/requests/ffffffffffffffff", "");
    assert_eq!(status, 404);
    let (status, _, _) = request(addr, "GET", "/debug/requests/not-hex", "");
    assert_eq!(status, 400);

    // /debug/memo reports table occupancy and flight-recorder state.
    let (status, _, memo) = request(addr, "GET", "/debug/memo", "");
    assert_eq!(status, 200);
    for needle in [
        "\"tables\":[",
        "\"table\":\"full\"",
        "\"table\":\"gcd\"",
        "\"entries\":",
        "\"bytes\":",
        "\"shard_ops\":[",
        "\"archive_faults\":",
        "\"flight\":{",
        "\"recorded\":3",
        "\"captured\":1",
    ] {
        assert!(memo.contains(needle), "missing {needle} in {memo}");
    }

    // The labeled request counters appear on /metrics and validate.
    let (status, _, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let exp = dda_obs::prom::parse_exposition(&metrics).expect("exposition parses");
    assert_eq!(
        exp.value(
            "dda_serve_requests_total",
            &[("endpoint", "/analyze"), ("outcome", "ok")],
        ),
        Some(2.0)
    );
    assert_eq!(
        exp.value(
            "dda_serve_requests_total",
            &[("endpoint", "/analyze"), ("outcome", "deadline")],
        ),
        Some(1.0)
    );

    stop(addr, &handle, join);
    let _ = std::fs::remove_dir_all(&dir);
}
