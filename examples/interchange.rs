//! Loop interchange legality — the classic consumer of direction vectors.
//!
//! Interchanging two nested loops permutes every dependence's direction
//! vector. The transformation is legal iff no permuted vector becomes
//! lexicographically negative (i.e. has `>` as its first non-`=`
//! component): that would mean a consumer running before its producer.
//! This is exactly why the paper computes *all* vectors, not just a
//! yes/no answer.
//!
//! ```text
//! cargo run --example interchange
//! ```

use dda::core::transform::{interchange_is_legal, may_be_lexicographically_negative};
use dda::core::{DependenceAnalyzer, DirectionVector};
use dda::ir::{parse_program, passes};

fn interchange_levels(v: &DirectionVector, a: usize, b: usize) -> DirectionVector {
    let mut out = v.clone();
    out.0.swap(a, b);
    out
}

fn check(label: &str, src: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {label} ===");
    let mut program = parse_program(src)?;
    passes::normalize(&mut program);
    let mut analyzer = DependenceAnalyzer::new();
    let report = analyzer.analyze_program(&program);

    // Show the per-vector reasoning, then ask the library for the verdict.
    for pair in report.pairs() {
        if pair.result.is_independent() || pair.common_loop_ids.len() < 2 {
            continue;
        }
        for v in &pair.direction_vectors {
            let swapped = interchange_levels(v, 0, 1);
            let bad = may_be_lexicographically_negative(&swapped);
            println!(
                "  {}: {v} -> {swapped}{}",
                pair.array,
                if bad {
                    "   ILLEGAL (lexicographically negative)"
                } else {
                    ""
                }
            );
        }
    }
    let legal = interchange_is_legal(&report, 0, 1);
    println!(
        "  interchange of the outer two loops is {}\n",
        if legal { "LEGAL" } else { "ILLEGAL" }
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // (=, <) dependence: stays (=, <) after interchange... swapped it is
    // (<, =): still positive. Legal — and it unlocks stride-1 access.
    check(
        "row-stencil (legal)",
        "for i = 1 to 64 { for j = 1 to 64 {
             a[i][j + 1] = a[i][j] + 1;
         } }",
    )?;

    // The wavefront has (<, >) among its vectors: interchanged it becomes
    // (>, <) — lexicographically negative. Illegal.
    check(
        "skewed recurrence (illegal)",
        "for i = 2 to 64 { for j = 2 to 64 {
             a[i][j] = a[i - 1][j + 1] + 1;
         } }",
    )?;

    // Distance (1, 1): interchange keeps it (1, 1). Legal.
    check(
        "diagonal recurrence (legal)",
        "for i = 2 to 64 { for j = 2 to 64 {
             a[i][j] = a[i - 1][j - 1] + 1;
         } }",
    )?;
    Ok(())
}
