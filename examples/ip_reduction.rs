//! Section 2.1 made concrete: data dependence testing and integer
//! programming are mutually reducible.
//!
//! The paper encodes the IP feasibility problem `∃x ≥ 0. A x = b` as a
//! dependence question by writing `A` into array subscripts. This example
//! solves small integer programs with the dependence analyzer — including
//! reading back the witness — and shows the reverse reduction cost
//! intuition: dependence *is* IP, which is why the special-case exact
//! cascade matters.
//!
//! ```text
//! cargo run --example ip_reduction
//! ```

use dda::core::DependenceAnalyzer;
use dda::ir::parse_program;

/// Solves `∃ x, y ∈ [0, bound]. c1·x + c2·y = target` via the paper's
/// encoding, returning a witness.
fn solve_ip(
    c1: i64,
    c2: i64,
    target: i64,
    bound: i64,
) -> Result<Option<(i64, i64)>, Box<dyn std::error::Error>> {
    // The paper's Section 2.1 program shape:
    //   for x = 0 to unknown { for y = 0 to unknown {
    //       a[c1*x + c2*y] = a[target]
    //   } }
    let src = format!(
        "for x = 0 to {bound} {{ for y = 0 to {bound} {{
             a[{c1} * x + {c2} * y] = a[{target}];
         }} }}"
    );
    let program = parse_program(&src)?;
    let mut analyzer = DependenceAnalyzer::new();
    let report = analyzer.analyze_program(&program);
    let pair = &report.pairs()[0];
    if !pair.result.answer.is_dependent() {
        return Ok(None);
    }
    // The witness lists (x, y, x', y'); the writing iteration is the
    // solution.
    let w = pair
        .witness
        .as_ref()
        .expect("dependent pairs carry witnesses");
    Ok(Some((w[0], w[1])))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Integer programming via dependence testing (Section 2.1)\n");
    let instances = [
        (3, 5, 22, 10),   // 3x + 5y = 22
        (3, 5, 7, 10),    // 3x + 5y = 7 with x,y >= 0: only (4, -1)/(−1,2): infeasible in the box
        (3, 6, 22, 10),   // gcd(3,6) does not divide 22: infeasible outright
        (7, 11, 100, 20), // 7x + 11y = 100
    ];
    for (c1, c2, target, bound) in instances {
        match solve_ip(c1, c2, target, bound)? {
            Some((x, y)) => {
                assert_eq!(c1 * x + c2 * y, target);
                println!(
                    "{c1}x + {c2}y = {target}, 0 <= x,y <= {bound}:  \
                     solvable, e.g. x = {x}, y = {y}"
                );
            }
            None => println!("{c1}x + {c2}y = {target}, 0 <= x,y <= {bound}:  infeasible (exact)"),
        }
    }

    println!(
        "\nThis is why dependence testing is NP-hard in general — and why the\n\
         paper's cascade of special-case exact tests (rather than a general\n\
         IP solver) is the practical answer."
    );
    Ok(())
}
