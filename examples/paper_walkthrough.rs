//! A guided tour of every worked example in the paper, showing which test
//! fires and why.
//!
//! ```text
//! cargo run --example paper_walkthrough
//! ```

use dda::core::cascade::run_cascade;
use dda::core::gcd::{gcd_preprocess, GcdOutcome};
use dda::core::loop_residue::{loop_residue, LoopResidueOutcome};
use dda::core::problem::build_problem;
use dda::core::system::{Constraint, VarBounds};
use dda::core::DependenceAnalyzer;
use dda::ir::{extract_accesses, parse_program, reference_pairs};

fn show(title: &str, src: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("== {title} ==");
    for line in src.lines() {
        println!("    {}", line.trim());
    }
    let program = parse_program(src)?;
    let set = extract_accesses(&program);
    let pairs = reference_pairs(&set, false);
    let pair = &pairs[0];
    let problem = build_problem(pair.a, pair.b, pair.common, true)?;

    println!(
        "  variables: {:?}",
        problem
            .vars
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    match gcd_preprocess(&problem).expect("no overflow") {
        GcdOutcome::Independent => {
            println!("  extended GCD: no integer solution -> INDEPENDENT\n");
            return Ok(());
        }
        GcdOutcome::Reduced(reduced) => {
            println!(
                "  extended GCD: {} equalities eliminated, {} free variable(s); constraints:",
                problem.eq_coeffs.len(),
                reduced.num_t()
            );
            for c in &reduced.system.constraints {
                println!("    {c}");
            }
            let outcome = run_cascade(&reduced.system);
            println!(
                "  cascade: resolved by {} -> {:?}",
                outcome.used, outcome.answer
            );
        }
    }

    let mut analyzer = DependenceAnalyzer::new();
    let report = analyzer.analyze_program(&program);
    let p = &report.pairs()[0];
    if !p.direction_vectors.is_empty() {
        let vecs: Vec<String> = p
            .direction_vectors
            .iter()
            .map(ToString::to_string)
            .collect();
        println!(
            "  direction vectors: {}  distance: {}",
            vecs.join(" "),
            p.distance
        );
    }
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Worked examples from Maydan, Hennessy & Lam (PLDI 1991)\n");

    show(
        "Section 1, loop 1: disjoint windows",
        "for i = 1 to 10 { a[i] = a[i + 10] + 3; }",
    )?;
    show(
        "Section 1, loop 2: loop-carried flow dependence",
        "for i = 1 to 10 { a[i + 1] = a[i] + 3; }",
    )?;
    show(
        "Section 3.1: the extended GCD variable change",
        "for i = 1 to 10 { a[i + 10] = a[i]; }",
    )?;
    show(
        "Section 3.2: coupled subscripts, exact via SVPC",
        "for i1 = 1 to 10 { for i2 = 1 to 10 { a[i1][i2] = a[i2 + 10][i1 + 9]; } }",
    )?;
    show(
        "Section 6: two direction vectors",
        "for i = 0 to 10 { for j = 0 to 10 { a[i][j] = a[2 * i][j] + 7; } }",
    )?;
    show(
        "Section 6: constant distance",
        "for i = 0 to 10 { a[i] = a[i - 3] + 7; }",
    )?;
    show(
        "Section 8: symbolic terms",
        "read(n); for i = 1 to 10 { a[i + n] = a[i + 2 * n + 1] + 3; }",
    )?;

    // Figure 1: the Loop Residue graph with a negative cycle, fed to the
    // test directly in the paper's own variables (t1, t2, t3).
    println!("== Figure 1: Loop Residue graph ==");
    println!("    t1 >= 1, t3 <= 4, t1 - t3 <= -4  (i.e. t3 >= t1 + 4)");
    let mut bounds = VarBounds::unbounded(3);
    bounds.tighten_lb(0, 1); // t1 >= 1
    bounds.tighten_ub(2, 4); // t3 <= 4
    let residual = vec![Constraint::new(vec![1, 0, -1], -4)];
    match loop_residue(&bounds, &residual) {
        LoopResidueOutcome::Infeasible => {
            println!("  negative cycle t1 -> t3 -> n0 -> t1 of value -1 -> INDEPENDENT")
        }
        other => println!("  unexpected: {other:?}"),
    }
    Ok(())
}
