//! A mini auto-parallelizer: the paper's motivating application.
//!
//! Normalizes a small scientific kernel, runs exact dependence analysis,
//! and annotates each loop as `parallel` or `sequential` based on whether
//! any dependence is carried at its level — demonstrating why exactness
//! matters: an inexact "assume dependent" would serialize the outer loop.
//!
//! ```text
//! cargo run --example parallelizer
//! ```

use std::collections::BTreeSet;

use dda::core::DependenceAnalyzer;
use dda::ir::{parse_program, passes, ForLoop, Program, Stmt};

/// Prints the program with a parallelism annotation per loop, using the
/// same pre-order loop numbering as access extraction.
fn print_annotated(program: &Program, carried: &BTreeSet<usize>) {
    fn go(stmts: &[Stmt], depth: usize, next_id: &mut usize, carried: &BTreeSet<usize>) {
        for s in stmts {
            match s {
                Stmt::For(ForLoop {
                    var,
                    lower,
                    upper,
                    body,
                    ..
                }) => {
                    let id = *next_id;
                    *next_id += 1;
                    let tag = if carried.contains(&id) {
                        "sequential"
                    } else {
                        "parallel"
                    };
                    println!(
                        "{:indent$}for {var} = {lower} to {upper} {{   // {tag}",
                        "",
                        indent = depth * 4
                    );
                    go(body, depth + 1, next_id, carried);
                    println!("{:indent$}}}", "", indent = depth * 4);
                }
                Stmt::If(i) => {
                    println!(
                        "{:indent$}if ({} {} {}) {{ ... }}",
                        "",
                        i.lhs,
                        i.op.as_str(),
                        i.rhs,
                        indent = depth * 4
                    );
                    go(&i.then_body, depth + 1, next_id, carried);
                    go(&i.else_body, depth + 1, next_id, carried);
                }
                other_stmt => {
                    let text = match other_stmt {
                        Stmt::ArrayAssign(a) => format!("{} = {};", a.target, a.value),
                        Stmt::ScalarAssign(a) => format!("{} = {};", a.name, a.value),
                        Stmt::Read(n) => format!("read({n});"),
                        Stmt::For(_) | Stmt::If(_) => unreachable!(),
                    };
                    println!("{:indent$}{text}", "", indent = depth * 4);
                }
            }
        }
    }
    let mut next_id = 0;
    go(&program.stmts, 0, &mut next_id, carried);
}

fn analyze(label: &str, src: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {label} ===");
    let mut program = parse_program(src)?;
    passes::normalize(&mut program);
    let mut analyzer = DependenceAnalyzer::new();
    let report = analyzer.analyze_program(&program);
    let carried = report.carried_dependence_loops();
    print_annotated(&program, &carried);
    println!(
        "({} pairs, {} independent)\n",
        report.pairs().len(),
        report.independent_count()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A stencil update: the j-loop carries a distance-1 dependence, the
    // i-loop carries nothing — outer-loop parallelism survives.
    analyze(
        "2-D stencil",
        "for i = 1 to 100 {
             for j = 1 to 100 {
                 a[i][j + 1] = a[i][j] + b[i][j];
             }
         }",
    )?;

    // A transposed copy touches each element once: fully parallel.
    analyze(
        "transpose copy",
        "for i = 1 to 100 {
             for j = 1 to 100 {
                 c[i][j] = d[j][i];
             }
         }",
    )?;

    // Wavefront recurrence: both loops carry dependences.
    analyze(
        "wavefront",
        "for i = 2 to 100 {
             for j = 2 to 100 {
                 a[i][j] = a[i - 1][j] + a[i][j - 1];
             }
         }",
    )?;

    // The paper's Section 8 shape: an induction variable plus a symbolic
    // stride — the prepasses rewrite it, symbolic analysis proves the
    // write and read streams never collide.
    analyze(
        "induction + symbolic",
        "read(n);
         iz = 0;
         for i = 1 to 10 {
             iz = iz + 2;
             a[iz + n] = a[iz + 2 * n + 1] + 3;
         }",
    )?;
    Ok(())
}
