//! A mini auto-parallelizer: the paper's motivating application.
//!
//! Normalizes a small scientific kernel, runs exact dependence analysis,
//! builds the program dependence graph with [`dda::graph`], and prints
//! the source with each loop annotated `parallel` or `sequential` —
//! demonstrating why exactness matters: an inexact "assume dependent"
//! would serialize the outer loop.
//!
//! The whole pipeline is three library calls (`analyze_program` →
//! `build_graph` → `annotate_source`); this file is deliberately a thin
//! wrapper so the graph crate, not the example, owns the verdict logic.
//! `tests/parallelizer.rs` pins this output as a snapshot.
//!
//! ```text
//! cargo run --example parallelizer
//! ```

use dda::core::DependenceAnalyzer;
use dda::graph::{build_graph, render::annotate_source};
use dda::ir::{parse_program, passes};

fn analyze(label: &str, src: &str) -> Result<(), Box<dyn std::error::Error>> {
    println!("=== {label} ===");
    let mut program = parse_program(src)?;
    passes::normalize(&mut program);
    let mut analyzer = DependenceAnalyzer::new();
    let report = analyzer.analyze_program(&program);
    let graph = build_graph(&program, &report);
    print!("{}", annotate_source(&program, &graph));
    println!(
        "({} pairs, {} independent)\n",
        report.pairs().len(),
        report.independent_count()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A stencil update: the j-loop carries a distance-1 dependence, the
    // i-loop carries nothing — outer-loop parallelism survives.
    analyze(
        "2-D stencil",
        "for i = 1 to 100 {
             for j = 1 to 100 {
                 a[i][j + 1] = a[i][j] + b[i][j];
             }
         }",
    )?;

    // A transposed copy touches each element once: fully parallel.
    analyze(
        "transpose copy",
        "for i = 1 to 100 {
             for j = 1 to 100 {
                 c[i][j] = d[j][i];
             }
         }",
    )?;

    // Wavefront recurrence: both loops carry dependences.
    analyze(
        "wavefront",
        "for i = 2 to 100 {
             for j = 2 to 100 {
                 a[i][j] = a[i - 1][j] + a[i][j - 1];
             }
         }",
    )?;

    // The paper's Section 8 shape: an induction variable plus a symbolic
    // stride — the prepasses rewrite it, symbolic analysis proves the
    // write and read streams never collide.
    analyze(
        "induction + symbolic",
        "read(n);
         iz = 0;
         for i = 1 to 10 {
             iz = iz + 2;
             a[iz + n] = a[iz + 2 * n + 1] + 3;
         }",
    )?;
    Ok(())
}
