//! Survey of the synthetic PERFECT Club suite: per-program pair counts,
//! resolving tests, memoization effectiveness, and exactness — a compact
//! rendition of the paper's whole evaluation.
//!
//! ```text
//! cargo run --release --example perfect_survey          # full scale
//! DDA_SCALE=0.1 cargo run --example perfect_survey      # 10% scale
//! ```

use dda::core::{DependenceAnalyzer, TestKind};
use dda::perfect::perfect_suite;

fn main() {
    let scale: f64 = std::env::var("DDA_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.1);
    println!("Synthetic PERFECT Club at scale {scale}\n");
    println!(
        "{:<8} {:>7} {:>8} {:>6} {:>6} {:>8} {:>8} {:>7} {:>8}",
        "Program", "pairs", "indep", "const", "gcd", "tests", "unique%", "dirvecs", "exact"
    );

    let mut analyzer = DependenceAnalyzer::new();
    let mut total_pairs = 0;
    for prog in perfect_suite(scale) {
        let report = analyzer.analyze_program(&prog.program);
        let s = &report.stats;
        let unique = if s.memo_queries == 0 {
            100.0
        } else {
            100.0 * (s.memo_queries - s.memo_hits) as f64 / s.memo_queries as f64
        };
        let exact = report
            .pairs()
            .iter()
            .filter(|p| p.result.answer.is_exact())
            .count();
        println!(
            "{:<8} {:>7} {:>8} {:>6} {:>6} {:>8} {:>7.1}% {:>7} {:>5}/{}",
            prog.name(),
            s.pairs,
            s.independent_pairs,
            s.constant,
            s.gcd_independent,
            s.base_tests.total(),
            unique,
            s.direction_vectors_found,
            exact,
            s.pairs,
        );
        total_pairs += s.pairs;
    }

    let s = analyzer.stats();
    println!("\nCumulative over the suite ({total_pairs} pairs):");
    for kind in TestKind::ALL {
        println!(
            "  {kind:<16} {:>6} calls, {:>5} independent",
            s.base_tests.calls_for(kind),
            s.base_tests.independent[kind.index()],
        );
    }
    println!(
        "  memo: {} queries, {} hits ({:.1}% unique)",
        s.memo_queries,
        s.memo_hits,
        s.unique_case_percentage()
    );
    println!("  every answer exact: {}", s.assumed == 0);
}
