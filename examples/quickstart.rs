//! Quickstart: the paper's two opening loops.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dda::core::DependenceAnalyzer;
use dda::ir::parse_program;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // First loop: the write a[i] and read a[i+10] can never overlap
    // inside the bounds — every iteration can run concurrently.
    let independent = parse_program(
        "for i = 1 to 10 {
             a[i] = a[i + 10] + 3;
         }",
    )?;
    // Second loop: each read sees the value written one iteration ago —
    // forced sequential execution.
    let dependent = parse_program(
        "for i = 1 to 10 {
             a[i + 1] = a[i] + 3;
         }",
    )?;

    let mut analyzer = DependenceAnalyzer::new();

    for (label, program) in [("loop 1", &independent), ("loop 2", &dependent)] {
        let report = analyzer.analyze_program(program);
        println!("{label}:");
        for pair in report.pairs() {
            println!(
                "  {} pair -> {:?} (resolved by {})",
                pair.array, pair.result.answer, pair.result.resolved_by
            );
            if !pair.direction_vectors.is_empty() {
                let vecs: Vec<String> = pair
                    .direction_vectors
                    .iter()
                    .map(ToString::to_string)
                    .collect();
                println!(
                    "  direction vectors: {} distance: {}",
                    vecs.join(" "),
                    pair.distance
                );
            }
        }
        println!(
            "  parallelizable: {}\n",
            report.carried_dependence_loops().is_empty()
        );
    }
    Ok(())
}
