//! Offline stand-in for the subset of `criterion` 0.5 used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim re-implements the benchmarking API the in-tree benches consume:
//! [`Criterion`] with `sample_size` / `warm_up_time` / `measurement_time`,
//! [`BenchmarkGroup`], `bench_function` / `bench_with_input`,
//! [`BenchmarkId`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros.
//!
//! Measurement is real: each benchmark is warmed up for the configured
//! warm-up time, the per-batch iteration count is calibrated so one batch
//! takes roughly `measurement_time / sample_size`, and `sample_size`
//! timed batches are collected. Mean and median per-iteration times are
//! printed to stdout. There are no HTML reports, plots, or
//! change-detection statistics.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` if they want; the
/// in-tree benches use `std::hint::black_box` directly.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples collected per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets how long each benchmark is run untimed before sampling.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up_time = d;
        self
    }

    /// Sets the total time budget for the timed samples.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self, name, routine);
        self
    }

    /// Called by [`criterion_main!`] after all groups ran.
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, routine);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label);
        run_one(self.criterion, &label, |b| routine(b, input));
        self
    }

    /// Ends the group. (No-op beyond upstream-API parity.)
    pub fn finish(self) {}
}

/// Identifies a benchmark as `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id consisting of just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { label: s }
    }
}

/// Timing harness handed to each benchmark routine.
pub struct Bencher {
    mode: Mode,
    iters_per_batch: u64,
    /// Elapsed time of the last completed batch.
    last_batch: Duration,
}

enum Mode {
    /// Calibration/warm-up: run a fixed small batch and record the time.
    Probe,
    /// Measurement: run `iters_per_batch` iterations and record the time.
    Sample,
}

impl Bencher {
    /// Runs `f` for the batch size chosen by the harness and records the
    /// elapsed wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let iters = match self.mode {
            Mode::Probe => self.iters_per_batch.max(1),
            Mode::Sample => self.iters_per_batch,
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.last_batch = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(config: &Criterion, label: &str, mut routine: F) {
    // Warm-up + calibration: run growing batches until the warm-up budget
    // is spent, tracking the observed per-iteration cost.
    let mut bencher = Bencher {
        mode: Mode::Probe,
        iters_per_batch: 1,
        last_batch: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut per_iter = Duration::from_nanos(1);
    while warm_start.elapsed() < config.warm_up_time {
        routine(&mut bencher);
        per_iter = bencher.last_batch / u32::try_from(bencher.iters_per_batch).unwrap_or(u32::MAX);
        if per_iter.is_zero() {
            per_iter = Duration::from_nanos(1);
        }
        // Grow batches so timer overhead stops dominating fast routines.
        if bencher.last_batch < Duration::from_millis(1) {
            bencher.iters_per_batch = bencher.iters_per_batch.saturating_mul(4);
        }
    }

    // Pick a batch size such that sample_size batches fit the budget.
    let per_sample = config.measurement_time / u32::try_from(config.sample_size).unwrap_or(1);
    let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, u128::from(u64::MAX));
    bencher.mode = Mode::Sample;
    bencher.iters_per_batch = iters as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        routine(&mut bencher);
        samples.push(bencher.last_batch.as_secs_f64() / bencher.iters_per_batch as f64);
    }
    samples.sort_by(f64::total_cmp);
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let median = samples[samples.len() / 2];
    println!(
        "{label:<48} time: [mean {} median {}]  ({} samples x {} iters)",
        fmt_time(mean),
        fmt_time(median),
        config.sample_size,
        bencher.iters_per_batch,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group of benchmark functions, optionally with a custom
/// configuration, mirroring upstream's two syntaxes.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates the `main` function running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_prints() {
        let mut c = Criterion::default()
            .sample_size(5)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10));
        let mut group = c.benchmark_group("shim");
        let mut runs = 0u64;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs > 0, "routine never executed");
    }

    #[test]
    fn bench_with_input_passes_input() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(2))
            .measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("shim");
        let data = vec![1u64, 2, 3];
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::new("sum", "v3"), &data, |b, d| {
            b.iter(|| total = d.iter().sum())
        });
        group.finish();
        assert_eq!(total, 6);
    }
}
