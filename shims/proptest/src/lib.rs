//! Offline stand-in for the subset of `proptest` 1.x used by this
//! workspace.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim re-implements the API surface the in-tree property tests consume:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map`, range
//! and tuple strategies, [`collection::vec`], [`sample::select`],
//! [`bool::ANY`], [`arbitrary::any`], string strategies of the form
//! `"\\PC{lo,hi}"`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (failures print the case seed
//! instead of a minimized input), and generation streams differ. Neither
//! affects the in-tree tests, which assert universally quantified
//! properties.

#![warn(missing_docs)]

pub mod strategy;

/// Collection strategies (`vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing a `Vec` of values drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length lies in `size` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo + 1;
            let len = self.size.lo + (rng.next_u64() as usize) % span;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Sampling strategies (`select`).
pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy choosing uniformly among a fixed set of values.
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Chooses uniformly among `options` (which must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() as usize) % self.options.len();
            self.options[i].clone()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// `any::<T>()` support.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                #[allow(clippy::cast_possible_truncation)]
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    /// Strategy form of [`Arbitrary`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    /// The whole-domain strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The runner: configuration, error plumbing, and the deterministic RNG.
pub mod test_runner {
    /// Test-run configuration (the subset the workspace uses).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` accepted cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property failed; the payload is the assertion message.
        Fail(String),
        /// The case was rejected by `prop_assume!` and is not counted.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// An assumption rejection.
        #[must_use]
        pub fn reject() -> TestCaseError {
            TestCaseError::Reject("prop_assume! rejected".into())
        }
    }

    /// Deterministic xorshift* generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator (splitmix-scrambled so small seeds work).
        #[must_use]
        pub fn seed(seed: u64) -> TestRng {
            let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            TestRng { state: z | 1 }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    fn base_seed(name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        // FNV-1a over the test name: deterministic, per-test streams.
        name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
        })
    }

    /// Drives one property: generates cases, skips rejections, panics on
    /// the first failure with enough context to reproduce it.
    pub fn run_proptest<F>(config: &Config, name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut seeder = TestRng::seed(base_seed(name));
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        let max_rejects = config.cases.saturating_mul(16).max(4096);
        while accepted < config.cases {
            let case_seed = seeder.next_u64();
            let mut rng = TestRng::seed(case_seed);
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "{name}: too many prop_assume! rejections \
                         ({rejected} rejected, {accepted} accepted)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => panic!(
                    "property `{name}` failed at case {accepted} \
                     (case seed {case_seed:#018x}):\n{msg}"
                ),
            }
        }
    }
}

/// String strategies: a `&str` is interpreted as a (tiny) regex subset.
pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    // The in-tree tests only use `\PC{lo,hi}`: "lo..=hi printable
    // non-control characters". A few multibyte characters are mixed in so
    // span arithmetic downstream sees non-ASCII widths.
    const EXOTIC: &[char] = &['λ', 'é', '中', '€', '≤', '𝕏', '¿', 'ß'];

    fn parse_pc(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix("\\PC{")?;
        let rest = rest.strip_suffix('}')?;
        let (lo, hi) = rest.split_once(',')?;
        Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
    }

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (lo, hi) = parse_pc(self).unwrap_or_else(|| {
                panic!(
                    "proptest shim: unsupported string pattern `{self}` \
                     (only `\\PC{{lo,hi}}` is implemented)"
                )
            });
            let len = lo + (rng.next_u64() as usize) % (hi - lo + 1);
            (0..len)
                .map(|_| {
                    let roll = rng.next_u64();
                    if roll.is_multiple_of(20) {
                        EXOTIC[(roll >> 8) as usize % EXOTIC.len()]
                    } else {
                        // Printable ASCII 0x20..=0x7E.
                        char::from(0x20 + ((roll >> 8) % 0x5F) as u8)
                    }
                })
                .collect()
        }
    }
}

/// The glob import every test file uses.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ..) { body }`
/// expands to a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{
            ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_proptest(
                &__config,
                stringify!($name),
                |__rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), __rng);
                    )+
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a == *__b,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
            __a, __b, format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `left != right`\n  both: `{:?}`",
            __a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            *__a != *__b,
            "assertion failed: `left != right`\n  both: `{:?}`\n{}",
            __a, format!($($fmt)+)
        );
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}
