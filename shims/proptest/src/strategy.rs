//! The [`Strategy`] trait and its core combinators.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike upstream proptest there is no value tree and no shrinking: a
/// strategy draws one concrete value per call.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds
    /// out of it (dependent generation).
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let draw = draw_u128(rng) % span;
                ((self.start as i128).wrapping_add(draw as i128)) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                if span == u128::MAX {
                    return draw_u128(rng) as $t;
                }
                let draw = draw_u128(rng) % (span + 1);
                ((lo as i128).wrapping_add(draw as i128)) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

fn draw_u128(rng: &mut TestRng) -> u128 {
    (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed(3);
        for _ in 0..500 {
            let v = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&v));
            let w = (0usize..=3).generate(&mut rng);
            assert!(w <= 3);
            let x = (-50i128..=50).generate(&mut rng);
            assert!((-50..=50).contains(&x));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::seed(9);
        let strat = (1i64..=4, 1i64..=4)
            .prop_flat_map(|(a, b)| (Just(a), Just(b), 0i64..10))
            .prop_map(|(a, b, c)| a * 100 + b * 10 + c);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            let (a, b, c) = (v / 100, (v / 10) % 10, v % 10);
            assert!((1..=4).contains(&a) && (1..=4).contains(&b) && c < 10);
        }
    }
}
