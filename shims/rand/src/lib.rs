//! Offline stand-in for the subset of `rand` 0.8 used by this workspace.
//!
//! The build environment has no access to crates.io, so this vendored
//! shim provides the exact API surface the workspace consumes —
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `gen_range` / `gen_bool` — backed by a deterministic
//! xorshift-star generator. Streams differ from upstream `rand`, which is
//! fine: all in-tree consumers are seeded synthetic-workload generators
//! whose tests assert distributional properties, not exact draws.

#![warn(missing_docs)]

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that can be sampled uniformly to yield a `T`.
pub trait SampleRange<T> {
    /// Draws one value from `self` using `rng`.
    ///
    /// Panics when the range is empty, matching `rand`'s contract.
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let draw = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The user-facing generator trait.
pub trait Rng {
    /// Returns the next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        // 53 uniform mantissa bits give a bias-free comparison.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator (xorshift* over a splitmix-seeded
    /// state). Not cryptographic; statistically adequate for workload
    /// synthesis.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 scrambles low-entropy seeds (0, 1, small ints).
            let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            StdRng {
                state: z | 1, // xorshift state must be non-zero
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(0..100);
            assert!((0..100).contains(&v));
            let w: i64 = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
