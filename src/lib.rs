//! # dda — Efficient and Exact Data Dependence Analysis
//!
//! Facade crate re-exporting the full reproduction of Maydan, Hennessy and
//! Lam, *Efficient and Exact Data Dependence Analysis* (PLDI 1991).
//!
//! - [`linalg`]: exact integer/rational linear algebra (extended GCD,
//!   unimodular/echelon factorization, Diophantine solving).
//! - [`ir`]: loop-nest IR, the Fortran-like DSL parser, and the
//!   normalization prepasses (constant propagation, forward substitution,
//!   induction variables).
//! - [`core`]: the cascaded exact tests (SVPC, Acyclic, Loop Residue,
//!   Fourier–Motzkin), memoization, direction/distance vectors, symbolic
//!   terms, and the whole-program analyzer.
//! - [`check`]: the independent proof-checking kernel that re-verifies
//!   every verdict's certificate by substitution and exact arithmetic,
//!   sharing no solver code with `core`.
//! - [`graph`]: the dependence-graph static analysis — a program
//!   dependence graph built from certificate-carrying pair reports,
//!   with per-loop parallelism verdicts and interchange legality.
//! - [`engine`]: the parallel batch analysis engine — scoped worker
//!   threads over a sharded concurrent memo table, with deterministic
//!   serial-identical output.
//! - [`obs`]: always-on observability — lock-free metrics registry,
//!   latency histograms with quantile summaries, hierarchical span
//!   recording, and Prometheus/JSON snapshot rendering.
//! - [`serve`]: the long-running analysis service — an HTTP front end
//!   over the engine with one warm shared memo table (bounded-capacity
//!   eviction), per-request deadlines, and admission control.
//! - [`baselines`]: the inexact comparators from Section 7 (simple GCD,
//!   Banerjee inequalities, Wolfe's direction-vector extension).
//! - [`perfect`]: the synthetic PERFECT Club workload suite used by the
//!   benchmark harness.
//! - [`bench`]: the benchmark harness library — paper-table regeneration
//!   helpers plus `bench::record`, the schema-versioned snapshot writer
//!   and p99 regression gate behind `dda bench record` / `dda bench
//!   gate`.
//!
//! # Quickstart
//!
//! ```
//! use dda::ir::parse_program;
//! use dda::core::DependenceAnalyzer;
//!
//! let program = parse_program(
//!     "for i = 1 to 10 { a[i] = a[i + 10] + 3; }",
//! )?;
//! let mut analyzer = DependenceAnalyzer::new();
//! let report = analyzer.analyze_program(&program);
//! assert!(report.pairs().iter().all(|p| p.result.is_independent()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use dda_baselines as baselines;
pub use dda_bench as bench;
pub use dda_check as check;
pub use dda_core as core;
pub use dda_engine as engine;
pub use dda_graph as graph;
pub use dda_ir as ir;
pub use dda_linalg as linalg;
pub use dda_obs as obs;
pub use dda_perfect as perfect;
pub use dda_serve as serve;
