//! `dda` — command-line exact data dependence analysis.
//!
//! ```text
//! dda analyze kernel.loop            # per-pair verdicts + vectors
//! dda parallel kernel.loop           # per-loop verdict JSONL (+ interchange)
//! dda graph kernel.loop              # dependence graph (DOT or --json)
//! dda serve --addr 127.0.0.1:8053    # long-running analysis service
//! echo 'for i = 1 to 9 { a[i+1] = a[i]; }' | dda analyze -
//! ```

use std::io::Read;
use std::process::ExitCode;

use dda::core::pipeline::{ClassifiedKind, GcdVerdict, Probe, TraceEvent};
use dda::core::{
    AnalyzerConfig, DependenceAnalyzer, MemoMode, RecordingProbe, StatsProbe, TestKind,
};
use dda::engine::{Engine, EngineConfig};
use dda::graph::render::{annotate_source, graph_json_line, parallel_json_line, to_dot};
use dda::ir::{parse_program, passes, Program};
use dda::obs::{MetricsProbe, MetricsRegistry, MetricsSnapshot, SpanRecorder};
use dda::serve::manifest::{self, BatchInput};
use dda::serve::render::{batch_json_line, json_escape};

const USAGE: &str = "\
dda — efficient and exact data dependence analysis (PLDI 1991)

USAGE:
    dda <COMMAND> <FILE|-> [OPTIONS]
    dda serve [OPTIONS]

COMMANDS:
    analyze     report every reference pair: verdict, resolving test,
                direction and distance vectors
    parallel    per-loop parallelism verdicts as JSONL: each loop is
                Parallel or Sequential with the blocking dependence
                edges cited by pair index, plus interchange legality
                for every directly nested loop pair. `--annotate`
                prints the program source with each loop marked
                parallel/sequential instead. Accepts multiple inputs
                like `batch` (`.loop` = program, else manifest;
                `-` reads one program from stdin) and runs on the
                parallel engine — output is byte-identical for any
                --workers/--shards
    graph       print the oriented dependence graph: Graphviz DOT by
                default, one JSON object per program with `--json`
                (nodes, classified edges with distance/direction and
                carrying level, loop table). Same inputs and engine
                as `parallel`
    batch       analyze every input with the parallel engine, emitting one
                JSON report per line. Inputs ending in `.loop` are DSL
                programs; anything else is a manifest file (one DSL path
                per line; `#` comments and blanks skipped). Multiple
                inputs are allowed and analyzed in order. Output is
                byte-identical for any --workers/--shards.
    memo        operate on persisted memo files:
                  `dda memo inspect <FILE>` prints the layout — for v3
                  binary archives the header, per-shard offsets/record
                  counts/checksums; for v2 text the entry counts.
                  Corrupt files fail with a located error.
                  `dda memo convert <IN> <OUT> [--shards N]` rewrites a
                  memo file (v2 text or v3) as a v3 binary archive with
                  N hash-partitioned shards (default 16). v2 text stays
                  loadable everywhere; conversion is the explicit
                  migration step
    bench       benchmark snapshots and the regression gate:
                  `dda bench record [--quick] [--out FILE]` re-runs the
                  standing measurements (per-stage resolving latency,
                  corpus analyze wall, memo archive load) with exact
                  sorted percentiles and writes a schema-versioned
                  JSON snapshot (default `BENCH_<date>.json`).
                  `dda bench gate <CURRENT> --baseline <FILE>
                  [--tolerance-pct N]` compares two snapshots and
                  exits nonzero on any p99 regression beyond the
                  tolerance (default 25%)
    serve       run a persistent analysis service over HTTP: POST .loop
                programs to /analyze (or manifests to /batch) and read
                the same JSONL `batch` emits. All requests share one
                warm memo table (optionally byte-capped with eviction),
                run under per-request deadlines, and are admission-
                controlled; GET /metrics serves the Prometheus
                exposition, /healthz liveness, /shutdown (or SIGTERM)
                drains and persists the memo atomically
    help        show this message

OPTIONS:
    --workers <N>        batch worker threads (0 = one per core; default 0)
    --shards <N>         batch memo-table shards (default 16)
    --no-directions      skip direction/distance vectors
    --no-symbolic        assume dependence for pairs with symbolic terms
    --no-normalize       skip the normalization prepasses
    --memo <MODE>        off | simple | improved   (default improved)
    --symmetric          enable symmetric-pair memoization
    --separable          enable dimension-by-dimension direction vectors
    --input-deps         also test read-read pairs
    --json               (graph) emit one JSON object per program
                         instead of DOT
    --annotate           (parallel) print annotated source instead of
                         the JSONL verdict stream
    --check              (analyze/batch) re-verify every verdict's
                         certificate with the independent proof-checking
                         kernel; rejections are listed on stderr, a
                         minimized .loop reproducer is dumped, and the
                         run exits nonzero
    --explain            narrate each pair's analysis step by step
    --trace              (analyze) emit the typed trace-event stream as
                         JSONL instead of the verdict listing; every
                         event carries a monotonic `seq` field and no
                         wall-clock timestamp, so traces are byte-stable
    --metrics[=FMT]      print a metrics snapshot to stderr after the
                         run: stage latencies (p50/p90/p99), verdict
                         counters, memo traffic, engine utilization.
                         FMT is `prom` (Prometheus text exposition,
                         default) or `json`
    --profile <DIR>      write span profiles to DIR: `spans.jsonl`
                         (hierarchical analyze → pair → stage spans
                         with monotonic seq numbers) and
                         `profile.folded` (flamegraph folded stacks).
                         Batch profiles replay the programs serially so
                         span nesting is deterministic
    --tests <LIST>       comma-separated exact-test pipeline, in order
                         (svpc,acyclic,residue,fm — default all four);
                         partial lists are ablations and may assume
                         dependence where a disabled test would decide
    --memo-load <FILE>   import a persisted memo table before analyzing
    --memo-save <FILE>   export the memo table afterwards
    --stats              print analysis statistics (with per-stage wall
                         times for analyze/batch)

SERVE OPTIONS:
    --addr <HOST:PORT>     bind address (default 127.0.0.1:8053; port 0
                           picks a free port, printed on stderr)
    --memo <FILE>          memo persistence path: loaded at startup when
                           present, written back atomically on graceful
                           shutdown (for serve, --memo is a path; the
                           service always memoizes in improved mode)
    --memo-max-bytes <N>   cap the warm memo tables at ~N bytes with
                           second-chance eviction (0 = unbounded;
                           eviction never changes verdicts)
    --deadline-ms <N>      default per-request deadline (0 = none;
                           requests may override with ?deadline_ms=N).
                           Timed-out requests answer with sound
                           conservative partial results
    --workers / --shards   as for batch
    --slow-ms <N>          capture any request slower than N ms into the
                           flight recorder's on-disk store (0 = latency
                           trigger off; deadline-exceeded requests are
                           always captured). Needs --capture-dir
    --capture-dir <DIR>    directory for slow-request captures
                           (`spans-<traceid>.jsonl` + folded flamegraph;
                           bounded, oldest evicted). Unset = no captures
    --flight-capacity <N>  completed-request summaries kept in the
                           in-memory ring behind GET /debug/requests
                           (default 256)
";

/// Output format for `--metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Prom,
    Json,
}

struct Options {
    command: String,
    file: String,
    /// Additional positional inputs (batch/graph/parallel).
    extra_files: Vec<String>,
    /// `graph`: emit JSONL instead of DOT.
    json: bool,
    /// `parallel`: print annotated source instead of JSONL.
    annotate: bool,
    config: AnalyzerConfig,
    normalize: bool,
    memo_load: Option<String>,
    memo_save: Option<String>,
    stats: bool,
    explain: bool,
    trace: bool,
    check: bool,
    metrics: Option<MetricsFormat>,
    profile: Option<String>,
    workers: usize,
    shards: usize,
    /// `serve`: bind address.
    addr: String,
    /// `serve`: memo persistence path (`--memo` means a path here).
    memo_path: Option<String>,
    /// `serve`: memo byte cap (0 = unbounded).
    memo_max_bytes: u64,
    /// `serve`: default per-request deadline in ms (0 = none).
    deadline_ms: u64,
    /// `serve`: slow-request capture threshold in ms (0 = off).
    slow_ms: u64,
    /// `serve`: slow-request capture directory.
    capture_dir: Option<String>,
    /// `serve`: flight-recorder ring capacity.
    flight_capacity: usize,
    /// `bench record`: shrink every measurement for CI smoke runs.
    quick: bool,
    /// `bench record`: output path (default `BENCH_<date>.json`).
    out: Option<String>,
    /// `bench gate`: baseline snapshot path.
    baseline: Option<String>,
    /// `bench gate`: p99 regression tolerance in percent.
    tolerance_pct: f64,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut it = args.iter();
    let command = it
        .next()
        .ok_or_else(|| "missing command".to_owned())?
        .clone();
    if command == "help" || command == "--help" || command == "-h" {
        return Ok(Options {
            command: "help".into(),
            file: String::new(),
            extra_files: Vec::new(),
            json: false,
            annotate: false,
            config: AnalyzerConfig::default(),
            normalize: true,
            memo_load: None,
            memo_save: None,
            stats: false,
            explain: false,
            trace: false,
            check: false,
            metrics: None,
            profile: None,
            workers: 0,
            shards: 16,
            addr: String::new(),
            memo_path: None,
            memo_max_bytes: 0,
            deadline_ms: 0,
            slow_ms: 0,
            capture_dir: None,
            flight_capacity: 256,
            quick: false,
            out: None,
            baseline: None,
            tolerance_pct: dda::bench::record::DEFAULT_TOLERANCE_PCT,
        });
    }
    if command != "analyze"
        && command != "parallel"
        && command != "graph"
        && command != "batch"
        && command != "serve"
        && command != "memo"
        && command != "bench"
    {
        return Err(format!("unknown command `{command}`"));
    }
    // `serve` binds a socket instead of reading an input file; `memo`
    // and `bench` read a subcommand into the file slot.
    let file = if command == "serve" {
        String::new()
    } else if command == "memo" {
        it.next()
            .ok_or_else(|| "memo needs a subcommand (inspect or convert)".to_owned())?
            .clone()
    } else if command == "bench" {
        it.next()
            .ok_or_else(|| "bench needs a subcommand (record or gate)".to_owned())?
            .clone()
    } else {
        it.next()
            .ok_or_else(|| "missing input file (use `-` for stdin)".to_owned())?
            .clone()
    };

    let mut extra_files = Vec::new();
    let mut json = false;
    let mut annotate = false;
    let mut config = AnalyzerConfig::default();
    let mut normalize = true;
    let mut memo_load = None;
    let mut memo_save = None;
    let mut stats = false;
    let mut explain = false;
    let mut trace = false;
    let mut check = false;
    let mut metrics = None;
    let mut profile = None;
    let mut workers = 0;
    let mut shards = 16;
    let mut addr = "127.0.0.1:8053".to_owned();
    let mut memo_path = None;
    let mut memo_max_bytes = 0u64;
    let mut deadline_ms = 0u64;
    let mut slow_ms = 0u64;
    let mut capture_dir = None;
    let mut flight_capacity = 256usize;
    let mut quick = false;
    let mut out = None;
    let mut baseline = None;
    let mut tolerance_pct = dda::bench::record::DEFAULT_TOLERANCE_PCT;
    while let Some(flag) = it.next() {
        if let Some(list) = flag.strip_prefix("--tests=") {
            config.pipeline = list.parse().map_err(|e| format!("--tests: {e}"))?;
            continue;
        }
        if let Some(fmt) = flag.strip_prefix("--metrics=") {
            metrics = Some(match fmt {
                "prom" => MetricsFormat::Prom,
                "json" => MetricsFormat::Json,
                other => return Err(format!("bad metrics format `{other}` (prom or json)")),
            });
            continue;
        }
        if !flag.starts_with('-') {
            if command == "batch"
                || command == "graph"
                || command == "parallel"
                || command == "memo"
                || command == "bench"
            {
                extra_files.push(flag.clone());
                continue;
            }
            return Err(format!(
                "unexpected extra input `{flag}` (only `batch`, `graph`, \
                 `parallel`, `memo`, and `bench` accept multiple inputs)"
            ));
        }
        match flag.as_str() {
            "--no-directions" => config.compute_directions = false,
            "--no-symbolic" => config.symbolic = false,
            "--no-normalize" => normalize = false,
            "--symmetric" => config.memo_symmetry = true,
            "--separable" => config.separable_directions = true,
            "--input-deps" => config.include_input_deps = true,
            "--json" => json = true,
            "--annotate" => annotate = true,
            "--stats" => stats = true,
            "--explain" => explain = true,
            "--trace" => trace = true,
            "--check" => check = true,
            "--metrics" => metrics = Some(MetricsFormat::Prom),
            "--profile" => {
                profile = Some(it.next().ok_or("--profile needs a directory")?.clone());
            }
            "--tests" => {
                let list = it.next().ok_or("--tests needs a comma-separated list")?;
                config.pipeline = list.parse().map_err(|e| format!("--tests: {e}"))?;
            }
            "--memo" if command == "serve" => {
                // For the service, `--memo` is the persistence path;
                // the memo *mode* is always improved server-side.
                memo_path = Some(it.next().ok_or("--memo needs a path")?.clone());
            }
            "--memo" => {
                let mode = it.next().ok_or("--memo needs a mode")?;
                config.memo = match mode.as_str() {
                    "off" => MemoMode::Off,
                    "simple" => MemoMode::Simple,
                    "improved" => MemoMode::Improved,
                    other => return Err(format!("bad memo mode `{other}`")),
                };
            }
            "--addr" => {
                addr = it.next().ok_or("--addr needs host:port")?.clone();
            }
            "--memo-max-bytes" => {
                let n = it.next().ok_or("--memo-max-bytes needs a byte count")?;
                memo_max_bytes = n.parse().map_err(|_| format!("bad byte count `{n}`"))?;
            }
            "--deadline-ms" => {
                let n = it.next().ok_or("--deadline-ms needs a count")?;
                deadline_ms = n.parse().map_err(|_| format!("bad deadline `{n}`"))?;
            }
            "--slow-ms" => {
                let n = it.next().ok_or("--slow-ms needs a count")?;
                slow_ms = n.parse().map_err(|_| format!("bad threshold `{n}`"))?;
            }
            "--capture-dir" => {
                capture_dir = Some(it.next().ok_or("--capture-dir needs a directory")?.clone());
            }
            "--flight-capacity" => {
                let n = it.next().ok_or("--flight-capacity needs a count")?;
                flight_capacity = n.parse().map_err(|_| format!("bad capacity `{n}`"))?;
            }
            "--quick" => quick = true,
            "--out" => {
                out = Some(it.next().ok_or("--out needs a path")?.clone());
            }
            "--baseline" => {
                baseline = Some(it.next().ok_or("--baseline needs a path")?.clone());
            }
            "--tolerance-pct" => {
                let n = it.next().ok_or("--tolerance-pct needs a percentage")?;
                tolerance_pct = n
                    .parse()
                    .ok()
                    .filter(|t: &f64| t.is_finite() && *t >= 0.0)
                    .ok_or_else(|| format!("bad tolerance `{n}`"))?;
            }
            "--memo-load" => {
                memo_load = Some(it.next().ok_or("--memo-load needs a path")?.clone());
            }
            "--memo-save" => {
                memo_save = Some(it.next().ok_or("--memo-save needs a path")?.clone());
            }
            "--workers" => {
                let n = it.next().ok_or("--workers needs a count")?;
                workers = n.parse().map_err(|_| format!("bad worker count `{n}`"))?;
            }
            "--shards" => {
                let n = it.next().ok_or("--shards needs a count")?;
                shards = n.parse().map_err(|_| format!("bad shard count `{n}`"))?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(Options {
        command,
        file,
        extra_files,
        json,
        annotate,
        config,
        normalize,
        memo_load,
        memo_save,
        stats,
        explain,
        trace,
        check,
        metrics,
        profile,
        workers,
        shards,
        addr,
        memo_path,
        memo_max_bytes,
        deadline_ms,
        slow_ms,
        capture_dir,
        flight_capacity,
        quick,
        out,
        baseline,
        tolerance_pct,
    })
}

fn read_source(file: &str) -> std::io::Result<String> {
    if file == "-" {
        let mut buf = String::new();
        std::io::stdin().read_to_string(&mut buf)?;
        Ok(buf)
    } else {
        std::fs::read_to_string(file)
    }
}

/// Canonical lowercase token for a test, matching `--tests` syntax.
fn test_token(kind: TestKind) -> &'static str {
    match kind {
        TestKind::Svpc => "svpc",
        TestKind::Acyclic => "acyclic",
        TestKind::LoopResidue => "residue",
        TestKind::FourierMotzkin => "fm",
    }
}

fn answer_token(answer: &dda::core::Answer) -> &'static str {
    if answer.is_independent() {
        "independent"
    } else if answer.is_dependent() {
        "dependent"
    } else {
        "unknown"
    }
}

/// One JSONL record per trace event: a monotonic `seq` field followed by
/// the event payload. Wall-clock timestamps are absent by design — the
/// stream must be byte-stable run to run, so the only time figures are
/// the per-phase `nanos` durations the events already measure, and `seq`
/// gives consumers a total order without one.
fn trace_json_line(seq: u64, event: &TraceEvent) -> String {
    let body = trace_event_json(event);
    format!("{{\"seq\":{seq},{}", &body[1..])
}

/// The event payload object (hand-rolled: no serde in this tree).
fn trace_event_json(event: &TraceEvent) -> String {
    use std::fmt::Write as _;
    match event {
        TraceEvent::PairStarted {
            array,
            a_access,
            b_access,
            common,
        } => format!(
            "{{\"event\":\"pair_started\",\"array\":\"{}\",\"a\":{a_access},\
             \"b\":{b_access},\"common\":{common}}}",
            json_escape(array)
        ),
        TraceEvent::Classified { kind } => match kind {
            ClassifiedKind::Constant { dependent } => format!(
                "{{\"event\":\"classified\",\"kind\":\"constant\",\"dependent\":{dependent}}}"
            ),
            ClassifiedKind::Unbuildable => {
                "{\"event\":\"classified\",\"kind\":\"unbuildable\"}".to_owned()
            }
            ClassifiedKind::Problem {
                vars,
                equations,
                bounds,
            } => format!(
                "{{\"event\":\"classified\",\"kind\":\"problem\",\"vars\":{vars},\
                 \"equations\":{equations},\"bounds\":{bounds}}}"
            ),
        },
        TraceEvent::CacheHit => "{\"event\":\"cache_hit\"}".to_owned(),
        TraceEvent::Gcd {
            verdict,
            cached,
            nanos,
        } => {
            let v = match verdict {
                GcdVerdict::Independent => "independent",
                GcdVerdict::Lattice => "lattice",
                GcdVerdict::Overflow => "overflow",
            };
            format!(
                "{{\"event\":\"gcd\",\"verdict\":\"{v}\",\"cached\":{cached},\"nanos\":{nanos}}}"
            )
        }
        TraceEvent::Reduced { free_vars, system } => {
            let rows: Vec<String> = system
                .constraints
                .iter()
                .map(|c| format!("\"{}\"", json_escape(&c.to_string())))
                .collect();
            format!(
                "{{\"event\":\"reduced\",\"free_vars\":{free_vars},\"system\":[{}]}}",
                rows.join(",")
            )
        }
        TraceEvent::ReduceOverflow => "{\"event\":\"reduce_overflow\"}".to_owned(),
        TraceEvent::StageEntered {
            test,
            vars,
            constraints,
            bounded,
        } => format!(
            "{{\"event\":\"stage_entered\",\"test\":\"{}\",\"vars\":{vars},\
             \"constraints\":{constraints},\"bounded\":{bounded}}}",
            test_token(*test)
        ),
        TraceEvent::Stage {
            test,
            verdict,
            nanos,
        } => format!(
            "{{\"event\":\"stage\",\"test\":\"{}\",\"verdict\":\"{verdict}\",\"nanos\":{nanos}}}",
            test_token(*test)
        ),
        TraceEvent::Witness { x } => {
            let vals: Vec<String> = x.iter().map(ToString::to_string).collect();
            format!("{{\"event\":\"witness\",\"x\":[{}]}}", vals.join(","))
        }
        TraceEvent::RefinementStarted => "{\"event\":\"refinement_started\"}".to_owned(),
        TraceEvent::Directions {
            vectors,
            distance,
            tests,
            exact,
            nanos,
        } => {
            let vecs: Vec<String> = vectors
                .iter()
                .map(|v| format!("\"{}\"", json_escape(&v.to_string())))
                .collect();
            format!(
                "{{\"event\":\"directions\",\"vectors\":[{}],\"distance\":\"{}\",\
                 \"tests\":{tests},\"exact\":{exact},\"nanos\":{nanos}}}",
                vecs.join(","),
                json_escape(&distance.to_string())
            )
        }
        TraceEvent::PairFinished { result, from_cache } => {
            let mut line = String::new();
            let _ = write!(
                line,
                "{{\"event\":\"pair_finished\",\"answer\":\"{}\",\"by\":\"{}\",\
                 \"cached\":{from_cache}}}",
                answer_token(&result.answer),
                json_escape(&result.resolved_by.to_string())
            );
            line
        }
    }
}

/// Engine configuration used for `--check` verification runs: same
/// analyzer settings as the main run, but with the engine's own
/// panic-on-failure hook off — the CLI reports rejections itself.
fn check_engine_config(opts: &Options) -> EngineConfig {
    EngineConfig {
        workers: opts.workers,
        shards: opts.shards,
        memo_mode: opts.config.memo,
        analyzer: opts.config,
        check: false,
    }
}

/// `--check`: re-verify every verdict's certificate with the independent
/// proof-checking kernel. Rejections are listed on stderr; for each
/// failing program a greedily minimized reproducer is dumped as
/// `dda-check-repro-<k>.loop`, and the run returns an error (nonzero
/// exit).
fn run_check(
    opts: &Options,
    labels: &[String],
    programs: &[Program],
    reports: &[dda::core::ProgramReport],
) -> Result<(), String> {
    let engine = Engine::with_config(check_engine_config(opts));
    let summary = engine.check_programs(programs, reports);
    eprintln!(
        "check: {} verified, {} unverified, {} rejected",
        summary.verified,
        summary.unverified,
        summary.failures.len()
    );
    if summary.failures.is_empty() {
        return Ok(());
    }
    for f in &summary.failures {
        eprintln!(
            "check failure: {} pair {} array `{}`: {}",
            labels[f.program], f.pair, f.array, f.reason
        );
    }
    let mut failing: Vec<usize> = summary.failures.iter().map(|f| f.program).collect();
    failing.sort_unstable();
    failing.dedup();
    for (k, &idx) in failing.iter().enumerate() {
        let cfg = check_engine_config(opts);
        let still_fails = |p: &Program| {
            let mut fresh = Engine::with_config(cfg);
            let batch = [p.clone()];
            let r = fresh.analyze_programs(&batch);
            !fresh.check_programs(&batch, &r).failures.is_empty()
        };
        let minimized = dda::engine::minimize_program(&programs[idx], still_fails);
        let path = format!("dda-check-repro-{k}.loop");
        std::fs::write(&path, format!("{minimized}")).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("minimized reproducer for {} written to {path}", labels[idx]);
    }
    Err(format!(
        "{} certificate check failure(s)",
        summary.failures.len()
    ))
}

/// Prints a metrics snapshot to stderr in the requested format.
///
/// Stderr so that `--metrics` composes with the JSONL report stream on
/// stdout — `dda batch --metrics=prom m 2>metrics.prom | jq` works.
fn emit_metrics(format: MetricsFormat, snapshot: &MetricsSnapshot) {
    match format {
        MetricsFormat::Prom => eprint!("{}", snapshot.to_prometheus()),
        MetricsFormat::Json => eprintln!("{}", snapshot.to_json()),
    }
}

/// Writes `spans.jsonl` and `profile.folded` from a span recording into
/// `dir`, creating it if needed.
fn write_profile_dir(dir: &str, spans: &SpanRecorder) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{dir}: {e}"))?;
    let base = std::path::Path::new(dir);
    let jsonl = base.join("spans.jsonl");
    std::fs::write(&jsonl, spans.to_jsonl()).map_err(|e| format!("{}: {e}", jsonl.display()))?;
    let folded = base.join("profile.folded");
    std::fs::write(&folded, spans.to_folded()).map_err(|e| format!("{}: {e}", folded.display()))?;
    Ok(())
}

/// Loads one batch input via the shared loader in `dda-serve` (also
/// behind the service's `/batch` endpoint): a `.loop` file is a program
/// itself; anything else is a manifest listing one program path per
/// line, relative entries resolving against the manifest's directory.
/// `-` reads a manifest from stdin, entries resolving against the
/// working directory. Errors are located (path + reason) and abort the
/// load — a batch with a broken entry never half-runs.
fn load_batch_input(opts: &Options, input: &str, out: &mut BatchInput) -> Result<(), String> {
    if input == "-" {
        let text = read_source(input).map_err(|e| format!("{input}: {e}"))?;
        return manifest::load_manifest_text(&text, std::path::Path::new(""), opts.normalize, out);
    }
    manifest::load_input_file(input, opts.normalize, out)
}

/// `--profile` for `dda batch`: replay the batch through a serial
/// analyzer (same analyzer configuration and warm start as the engine's
/// workers) with a [`SpanRecorder`] attached. The replay is what makes
/// the span hierarchy deterministic — engine waves interleave pairs
/// across threads, while the serial replay produces the same verdicts
/// (pinned by the engine's equivalence proptests) with stable nesting.
fn profile_batch(opts: &Options, files: &[String], programs: &[Program]) -> Result<(), String> {
    let dir = opts.profile.as_deref().expect("caller checked --profile");
    let config = check_engine_config(opts).effective_analyzer_config();
    let mut analyzer = DependenceAnalyzer::with_config(config);
    if let Some(path) = &opts.memo_load {
        analyzer
            .load_memo_file(path)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    let mut spans = SpanRecorder::new();
    for (file, program) in files.iter().zip(programs) {
        spans.begin_program(file);
        analyzer.analyze_program_probed(program, &mut spans);
    }
    spans.finish();
    write_profile_dir(dir, &spans)
}

/// `dda batch`: analyze every program from the inputs with the parallel
/// engine and emit one JSON report per line, in input order.
fn run_batch(opts: &Options) -> Result<(), String> {
    let mut batch = BatchInput::default();
    load_batch_input(opts, &opts.file, &mut batch)?;
    for input in &opts.extra_files {
        load_batch_input(opts, input, &mut batch)?;
    }
    let (files, programs) = (batch.labels, batch.programs);

    let mut engine = Engine::with_config(check_engine_config(opts));
    if let Some(path) = &opts.memo_load {
        engine
            .load_memo_file(path)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    let reports = engine.analyze_programs(&programs);

    let mut stdout = String::new();
    for (file, report) in files.iter().zip(&reports) {
        stdout.push_str(&batch_json_line(file, report));
        stdout.push('\n');
    }
    print!("{stdout}");

    if opts.stats {
        let s = engine.stats();
        eprintln!(
            "batch: {} programs, {} pairs | constant {} | gcd-independent {} | assumed {}",
            reports.len(),
            s.pairs,
            s.constant,
            s.gcd_independent,
            s.assumed
        );
        eprintln!(
            "tests: {} base + {} direction | memo {}/{} hits | gcd memo {}/{} hits",
            s.base_tests.total(),
            s.direction_tests.total(),
            s.memo_hits,
            s.memo_queries,
            s.gcd_memo_hits,
            s.gcd_memo_queries
        );
        eprintln!("stage times: {}", engine.stage_timings());
    }

    if let Some(format) = opts.metrics {
        let memo = engine.memo();
        let snapshot = MetricsSnapshot::from_registry(engine.metrics())
            .with_pairs(engine.stats())
            .with_memo_table("full", memo.full.counters(), memo.full.shard_ops())
            .with_memo_table("gcd", memo.gcd.counters(), memo.gcd.shard_ops())
            .with_memo_load(memo.memo_load_stats());
        emit_metrics(format, &snapshot);
    }
    if opts.profile.is_some() {
        profile_batch(opts, &files, &programs)?;
    }

    if let Some(path) = &opts.memo_save {
        engine
            .save_memo_file(path)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if opts.check {
        run_check(opts, &files, &programs, &reports)?;
    }
    Ok(())
}

/// `dda graph` / `dda parallel`: build the dependence graph for every
/// input with the parallel engine and render per-program output in
/// input order. Inputs load exactly as for `batch` (`.loop` = program,
/// anything else = manifest) except that `-` reads a single program
/// from stdin, matching the other single-program commands. Graph
/// construction is a pure function of each (program, report), so the
/// rendered output is byte-identical for any --workers/--shards and to
/// the service's `/parallel` endpoint on a cold memo.
fn run_graph(opts: &Options) -> Result<(), String> {
    let mut batch = BatchInput::default();
    for input in std::iter::once(&opts.file).chain(&opts.extra_files) {
        if input == "-" {
            let text = read_source(input).map_err(|e| format!("{input}: {e}"))?;
            manifest::push_program_source("-", &text, opts.normalize, &mut batch)?;
        } else {
            manifest::load_input_file(input, opts.normalize, &mut batch)?;
        }
    }
    let (files, programs) = (batch.labels, batch.programs);

    let mut engine = Engine::with_config(check_engine_config(opts));
    if let Some(path) = &opts.memo_load {
        engine
            .load_memo_file(path)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    let out = engine.graph_programs(&programs);

    let mut stdout = String::new();
    for ((file, program), graph) in files.iter().zip(&programs).zip(&out.graphs) {
        if opts.command == "graph" {
            if opts.json {
                stdout.push_str(&graph_json_line(file, graph));
                stdout.push('\n');
            } else {
                stdout.push_str(&to_dot(graph));
            }
        } else if opts.annotate {
            stdout.push_str(&annotate_source(program, graph));
        } else {
            stdout.push_str(&parallel_json_line(file, graph));
            stdout.push('\n');
        }
    }
    print!("{stdout}");

    if opts.stats {
        let s = engine.stats();
        let (mut parallel, mut sequential) = (0usize, 0usize);
        for graph in &out.graphs {
            for l in graph.loops.loops() {
                if graph.is_parallel(l.id) {
                    parallel += 1;
                } else {
                    sequential += 1;
                }
            }
        }
        let edges: usize = out.graphs.iter().map(|g| g.edges.len()).sum();
        eprintln!(
            "graph: {} programs, {} edges | {} parallel loops, {} sequential",
            out.graphs.len(),
            edges,
            parallel,
            sequential
        );
        eprintln!(
            "pairs: {} | constant {} | gcd-independent {} | assumed {}",
            s.pairs, s.constant, s.gcd_independent, s.assumed
        );
        eprintln!("stage times: {}", engine.stage_timings());
    }

    if let Some(format) = opts.metrics {
        let memo = engine.memo();
        let snapshot = MetricsSnapshot::from_registry(engine.metrics())
            .with_pairs(engine.stats())
            .with_memo_table("full", memo.full.counters(), memo.full.shard_ops())
            .with_memo_table("gcd", memo.gcd.counters(), memo.gcd.shard_ops())
            .with_memo_load(memo.memo_load_stats());
        emit_metrics(format, &snapshot);
    }
    if opts.profile.is_some() {
        profile_batch(opts, &files, &programs)?;
    }

    if let Some(path) = &opts.memo_save {
        engine
            .save_memo_file(path)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if opts.check {
        run_check(opts, &files, &programs, &out.batch.reports)?;
    }
    Ok(())
}

/// `dda serve`: run the persistent analysis service until SIGTERM,
/// SIGINT, or a `/shutdown` request, then drain and persist the memo.
fn run_serve(opts: &Options) -> Result<(), String> {
    let cfg = dda::serve::ServeConfig {
        addr: opts.addr.clone(),
        workers: opts.workers,
        shards: opts.shards,
        memo_max_bytes: opts.memo_max_bytes,
        deadline_ms: opts.deadline_ms,
        memo_path: opts.memo_path.clone().map(Into::into),
        normalize: opts.normalize,
        slow_ms: opts.slow_ms,
        capture_dir: opts.capture_dir.clone().map(Into::into),
        flight_capacity: opts.flight_capacity,
        ..dda::serve::ServeConfig::default()
    };
    let server = dda::serve::Server::bind(&cfg)?;
    let addr = server
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    eprintln!("dda serve: listening on {addr}");
    server.run()
}

/// `dda memo inspect <FILE>`: print a persisted memo file's layout.
/// v3 archives get the full header/shard/checksum listing; v2 text gets
/// an entry count. Corrupt files fail with the located error.
fn memo_inspect(path: &str) -> Result<(), String> {
    use dda::core::persist_v3::is_v3_file;
    if is_v3_file(std::path::Path::new(path)).map_err(|e| format!("{path}: {e}"))? {
        let archive = dda::core::MemoArchive::open(path).map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: dda-memo v3, {} shards/section, {} records, {} bytes{}",
            archive.shard_count(),
            archive.total_records(),
            archive.file_len(),
            if archive.is_mapped() { ", mmapped" } else { "" }
        );
        for s in archive.shard_infos() {
            println!(
                "  {} shard {:>4}: offset {:#x}, {} bytes, {} records, checksum {:#018x}",
                s.section, s.shard, s.offset, s.len, s.records, s.checksum
            );
        }
    } else {
        let memo = dda::core::SharedMemo::new(1);
        memo.load_memo_file(path)
            .map_err(|e| format!("{path}: {e}"))?;
        println!(
            "{path}: dda-memo v2 text, {} full + {} gcd entries",
            memo.full.unique_entries(),
            memo.gcd.unique_entries()
        );
    }
    Ok(())
}

/// `dda memo convert <IN> <OUT>`: load a memo file (v2 text or v3
/// binary) and write it back as a v3 archive with `--shards` shards.
fn memo_convert(input: &str, output: &str, shards: usize) -> Result<(), String> {
    let memo = dda::core::SharedMemo::new(shards.max(1));
    let format = memo
        .load_memo_file(input)
        .map_err(|e| format!("{input}: {e}"))?;
    memo.save_memo_file_v3(output, shards)
        .map_err(|e| format!("{output}: {e}"))?;
    let from = match format {
        dda::core::MemoFormat::V2Text => "v2 text",
        dda::core::MemoFormat::V3Binary => "v3 binary",
    };
    let entries = memo.full.unique_entries() + memo.gcd.unique_entries();
    let loaded = memo.memo_load_stats();
    eprintln!(
        "converted {input} ({from}, {} records) -> {output} (v3, {shards} shards)",
        loaded.records.max(entries as u64)
    );
    Ok(())
}

/// `dda bench`: record a benchmark snapshot or gate one against a
/// committed baseline.
fn run_bench(opts: &Options) -> Result<(), String> {
    use dda::bench::record as bench;
    match opts.file.as_str() {
        "record" => {
            if !opts.extra_files.is_empty() {
                return Err("bench record takes no positional inputs".into());
            }
            let report = bench::record(opts.quick);
            let path = opts
                .out
                .clone()
                .unwrap_or_else(|| format!("BENCH_{}.json", report.date));
            std::fs::write(&path, report.to_json()).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "bench record: wrote {path} ({} stages, {} corpus programs, \
                 {} memo records{})",
                report.stages.len(),
                report.corpus_programs,
                report.memo_records,
                if report.quick { ", --quick" } else { "" }
            );
            Ok(())
        }
        "gate" => {
            let [current] = opts.extra_files.as_slice() else {
                return Err("bench gate needs exactly one current snapshot file".into());
            };
            let baseline = opts
                .baseline
                .as_deref()
                .ok_or("bench gate needs --baseline <FILE>")?;
            let cur = std::fs::read_to_string(current).map_err(|e| format!("{current}: {e}"))?;
            let base = std::fs::read_to_string(baseline).map_err(|e| format!("{baseline}: {e}"))?;
            let report = bench::gate(&cur, &base, opts.tolerance_pct)?;
            for line in &report.lines {
                println!("{line}");
            }
            if report.passed() {
                println!("bench gate: pass (tolerance {}%)", opts.tolerance_pct);
                Ok(())
            } else {
                for failure in &report.failures {
                    eprintln!("bench gate failure: {failure}");
                }
                Err(format!(
                    "{} p99 regression(s) beyond {}% tolerance",
                    report.failures.len(),
                    opts.tolerance_pct
                ))
            }
        }
        other => Err(format!(
            "unknown bench subcommand `{other}` (record or gate)"
        )),
    }
}

/// `dda memo`: inspect or convert persisted memo files.
fn run_memo(opts: &Options) -> Result<(), String> {
    match opts.file.as_str() {
        "inspect" => {
            let [path] = opts.extra_files.as_slice() else {
                return Err("memo inspect needs exactly one file".into());
            };
            memo_inspect(path)
        }
        "convert" => {
            let [input, output] = opts.extra_files.as_slice() else {
                return Err("memo convert needs an input and an output file".into());
            };
            memo_convert(input, output, opts.shards)
        }
        other => Err(format!(
            "unknown memo subcommand `{other}` (inspect or convert)"
        )),
    }
}

fn run(opts: &Options) -> Result<(), String> {
    if opts.command == "serve" {
        return run_serve(opts);
    }
    if opts.command == "memo" {
        return run_memo(opts);
    }
    if opts.command == "bench" {
        return run_bench(opts);
    }
    if opts.command == "batch" {
        return run_batch(opts);
    }
    if opts.command == "graph" || opts.command == "parallel" {
        return run_graph(opts);
    }
    let source = read_source(&opts.file).map_err(|e| format!("{}: {e}", opts.file))?;
    let mut program = parse_program(&source).map_err(|e| e.render(&source))?;
    if opts.normalize {
        passes::normalize(&mut program);
    }

    let mut analyzer = DependenceAnalyzer::with_config(opts.config);
    if let Some(path) = &opts.memo_load {
        analyzer
            .load_memo_file(path)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    // One analysis, observed as needed. When any consumer of the event
    // stream is active (--trace, --metrics, --profile), record the events
    // once and replay them into every sink; --stats alone uses the cheap
    // timing probe, and otherwise the zero-cost null probe runs. Answers
    // are identical in all modes — the probe only watches (pinned by the
    // determinism proptests in tests/obs.rs).
    let record_events = opts.trace || opts.metrics.is_some() || opts.profile.is_some();
    let mut recorder = RecordingProbe::default();
    let mut timer = StatsProbe::default();
    let report = if record_events {
        analyzer.analyze_program_probed(&program, &mut recorder)
    } else if opts.stats {
        analyzer.analyze_program_probed(&program, &mut timer)
    } else {
        analyzer.analyze_program(&program)
    };
    if record_events && opts.stats {
        for event in &recorder.events {
            timer.record(event.clone());
        }
    }

    match opts.command.as_str() {
        "analyze" if opts.trace => {
            for (seq, event) in recorder.events.iter().enumerate() {
                println!("{}", trace_json_line(seq as u64, event));
            }
        }
        "analyze" if opts.explain => {
            let set = dda::ir::extract_accesses(&program);
            let pairs = dda::ir::reference_pairs(&set, opts.config.include_input_deps);
            for p in &pairs {
                print!(
                    "{}",
                    dda::core::explain::explain_pair_with(&opts.config, p.a, p.b, p.common)
                );
                println!();
            }
        }
        "analyze" => {
            if report.pairs().is_empty() {
                println!("no reference pairs to test");
            }
            for pair in report.pairs() {
                let cache = if pair.from_cache { " [cached]" } else { "" };
                println!(
                    "{} #{} vs #{}: {:?} (by {}){}",
                    pair.array,
                    pair.a_access,
                    pair.b_access,
                    pair.result.answer,
                    pair.result.resolved_by,
                    cache
                );
                if !pair.direction_vectors.is_empty() {
                    let vecs: Vec<String> = pair
                        .direction_vectors
                        .iter()
                        .map(ToString::to_string)
                        .collect();
                    println!(
                        "    directions: {}   distance: {}",
                        vecs.join(" "),
                        pair.distance
                    );
                }
            }
        }
        other => return Err(format!("unknown command `{other}`")),
    }

    if opts.stats {
        let s = &report.stats;
        println!(
            "\nstats: {} pairs | constant {} | gcd-independent {} | assumed {}",
            s.pairs, s.constant, s.gcd_independent, s.assumed
        );
        println!(
            "tests: {} base + {} direction | memo {}/{} hits | {} direction vectors",
            s.base_tests.total(),
            s.direction_tests.total(),
            s.memo_hits,
            s.memo_queries,
            s.direction_vectors_found
        );
        println!("stage times: {}", timer.timings);
    }

    if let Some(format) = opts.metrics {
        // Replay the recorded events into the registry, then join it with
        // the authoritative stats and the analyzer's own memo counters
        // (no shard spread: the serial tables are unsharded).
        let registry = MetricsRegistry::new();
        let mut probe = MetricsProbe::new(&registry);
        for event in &recorder.events {
            probe.record(event.clone());
        }
        let snapshot = MetricsSnapshot::from_registry(&registry)
            .with_pairs(&report.stats)
            .with_memo_table("full", analyzer.full_memo_counters(), Vec::new())
            .with_memo_table("gcd", analyzer.gcd_memo_counters(), Vec::new());
        emit_metrics(format, &snapshot);
    }
    if let Some(dir) = &opts.profile {
        let mut spans = SpanRecorder::new();
        spans.begin_program(&opts.file);
        for event in &recorder.events {
            spans.record(event.clone());
        }
        spans.finish();
        write_profile_dir(dir, &spans)?;
    }

    if let Some(path) = &opts.memo_save {
        analyzer
            .save_memo_file(path)
            .map_err(|e| format!("{path}: {e}"))?;
    }
    if opts.check {
        run_check(
            opts,
            std::slice::from_ref(&opts.file),
            std::slice::from_ref(&program),
            std::slice::from_ref(&report),
        )?;
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(opts) if opts.command == "help" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
