//! End-to-end tests of the `dda` command-line binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_cli(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dda"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn analyze_reports_pairs() {
    let (stdout, _, ok) = run_cli(
        &["analyze", "-", "--stats"],
        "for i = 1 to 9 { a[i + 1] = a[i]; }",
    );
    assert!(ok);
    assert!(stdout.contains("Dependent"), "{stdout}");
    assert!(stdout.contains("(<)"), "{stdout}");
    assert!(stdout.contains("distance: (1)"), "{stdout}");
    assert!(stdout.contains("stats:"), "{stdout}");
}

#[test]
fn parallel_annotates_loops() {
    let (stdout, _, ok) = run_cli(
        &["parallel", "-", "--annotate"],
        "for i = 1 to 9 { for j = 1 to 9 { a[i][j + 1] = a[i][j]; } }",
    );
    assert!(ok);
    assert!(stdout.contains("// parallel"), "{stdout}");
    assert!(stdout.contains("// sequential"), "{stdout}");
}

#[test]
fn parallel_defaults_to_verdict_jsonl_with_blocking_citations() {
    let (stdout, _, ok) = run_cli(
        &["parallel", "-"],
        "for i = 1 to 9 { for j = 1 to 9 { a[i][j + 1] = a[i][j]; } }",
    );
    assert!(ok);
    let line = stdout.lines().next().expect("one JSONL record");
    assert!(line.starts_with("{\"file\":\"-\",\"loops\":["), "{stdout}");
    // The i-loop is parallel; the j-loop is sequential and must cite
    // the blocking edge back to its pair report (the certificate).
    assert!(
        line.contains("\"id\":0,\"var\":\"i\",\"depth\":0,\"parallel\":true,\"blocking\":[]"),
        "{stdout}"
    );
    assert!(
        line.contains("\"id\":1,\"var\":\"j\",\"depth\":1,\"parallel\":false"),
        "{stdout}"
    );
    assert!(
        line.contains("\"pair\":0,\"array\":\"a\"") && line.contains("\"level\":1"),
        "{stdout}"
    );
    assert!(line.contains("\"interchange\":["), "{stdout}");
}

#[test]
fn parallel_reports_interchange_legality() {
    // (<, >): interchange would reverse the dependence — illegal.
    let (stdout, _, ok) = run_cli(
        &["parallel", "-"],
        "for i = 1 to 9 { for j = 1 to 9 { b[i + 1][j] = b[i][j + 1]; } }",
    );
    assert!(ok);
    assert!(
        stdout.contains("\"interchange\":[{\"outer\":0,\"inner\":1,\"legal\":false"),
        "{stdout}"
    );
    // (<, <): stays lexicographically positive under the swap — legal.
    let (stdout, _, ok) = run_cli(
        &["parallel", "-"],
        "for i = 1 to 9 { for j = 1 to 9 { b[i + 1][j + 1] = b[i][j]; } }",
    );
    assert!(ok);
    assert!(
        stdout
            .contains("\"interchange\":[{\"outer\":0,\"inner\":1,\"legal\":true,\"blocking\":[]}]"),
        "{stdout}"
    );
}

#[test]
fn parse_errors_are_rendered_with_location() {
    let (_, stderr, ok) = run_cli(&["analyze", "-"], "for i = 1 to { }");
    assert!(!ok);
    assert!(stderr.contains("parse error at 1:"), "{stderr}");
}

#[test]
fn unknown_flags_rejected_with_usage() {
    let (_, stderr, ok) = run_cli(&["analyze", "-", "--bogus"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown option"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run_cli(&["help"], "");
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn memo_save_and_load_round_trip() {
    let dir = std::env::temp_dir().join("dda_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let memo = dir.join("memo.txt");
    let memo_str = memo.to_str().unwrap();

    let (_, _, ok) = run_cli(
        &["analyze", "-", "--memo-save", memo_str],
        "for i = 1 to 9 { a[i + 1] = a[i]; }",
    );
    assert!(ok);
    assert!(memo.exists());

    // Warm start: the same pattern (different array) hits the cache.
    let (stdout, _, ok) = run_cli(
        &["analyze", "-", "--memo-load", memo_str, "--stats"],
        "for i = 1 to 9 { z[i + 1] = z[i]; }",
    );
    assert!(ok);
    assert!(stdout.contains("[cached]"), "{stdout}");
    std::fs::remove_file(&memo).ok();
}

#[test]
fn graph_emits_dot() {
    let (stdout, _, ok) = run_cli(&["graph", "-"], "for i = 1 to 9 { a[i + 1] = a[i]; }");
    assert!(ok);
    assert!(stdout.contains("digraph dependences"), "{stdout}");
    assert!(stdout.contains("flow (<) @L0"), "{stdout}");
    assert!(stdout.contains("shape=box"), "{stdout}");
}

#[test]
fn graph_json_emits_nodes_edges_and_loops() {
    let (stdout, _, ok) = run_cli(
        &["graph", "-", "--json"],
        "for i = 1 to 9 { a[i + 1] = a[i]; }",
    );
    assert!(ok);
    let line = stdout.lines().next().expect("one JSONL record");
    assert!(line.starts_with("{\"file\":\"-\",\"nodes\":["), "{stdout}");
    assert!(
        line.contains("\"label\":\"a[i + 1] (write)\",\"write\":true"),
        "{stdout}"
    );
    assert!(
        line.contains(
            "\"pair\":0,\"array\":\"a\",\"source\":0,\"sink\":1,\"kind\":\"flow\",\
             \"vector\":\"(<)\",\"distance\":\"(1)\",\"level\":0"
        ),
        "{stdout}"
    );
    assert!(
        line.contains("\"loops\":[{\"id\":0,\"var\":\"i\",\"depth\":0,\"parent\":null}]"),
        "{stdout}"
    );
}

#[test]
fn graph_and_parallel_are_byte_identical_across_worker_counts() {
    let dir = std::env::temp_dir().join("dda_cli_graph_workers");
    let manifest = write_perfect_batch(&dir, 0.2);
    let manifest = manifest.to_str().unwrap();

    for command in ["graph", "parallel"] {
        let (serial, _, ok) = run_cli(&[command, manifest, "--workers", "1"], "");
        assert!(ok);
        let (parallel, _, ok) = run_cli(&[command, manifest, "--workers", "4"], "");
        assert!(ok);
        assert_eq!(
            serial, parallel,
            "{command}: workers must not change output"
        );
        let (sharded, _, ok) = run_cli(&[command, manifest, "--workers", "4", "--shards", "3"], "");
        assert!(ok);
        assert_eq!(serial, sharded, "{command}: shards must not change output");
    }

    let (jsonl, _, ok) = run_cli(&["parallel", manifest], "");
    assert!(ok);
    assert_eq!(jsonl.lines().count(), 13, "one JSONL record per program");
    std::fs::remove_dir_all(&dir).ok();
}

/// Writes the 13 synthetic PERFECT programs to `dir` and returns a
/// manifest file listing them.
fn write_perfect_batch(dir: &std::path::Path, scale: f64) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).unwrap();
    let mut manifest = String::from("# synthetic PERFECT suite\n");
    for prog in dda::perfect::perfect_suite(scale) {
        let name = format!("{}.loop", prog.name());
        std::fs::write(dir.join(&name), &prog.source).unwrap();
        manifest.push_str(&name);
        manifest.push('\n');
    }
    let path = dir.join("manifest.txt");
    std::fs::write(&path, manifest).unwrap();
    path
}

#[test]
fn batch_output_is_byte_identical_across_worker_counts() {
    let dir = std::env::temp_dir().join("dda_cli_batch_workers");
    let manifest = write_perfect_batch(&dir, 0.2);
    let manifest = manifest.to_str().unwrap();

    let (serial, _, ok) = run_cli(&["batch", manifest, "--workers", "1"], "");
    assert!(ok);
    assert_eq!(serial.lines().count(), 13, "one JSONL record per program");
    assert!(
        serial.lines().all(|l| l.starts_with("{\"file\":\"")),
        "{serial}"
    );

    let (parallel, _, ok) = run_cli(&["batch", manifest, "--workers", "4"], "");
    assert!(ok);
    assert_eq!(serial, parallel, "worker count must not change output");

    let (sharded, _, ok) = run_cli(&["batch", manifest, "--workers", "4", "--shards", "3"], "");
    assert!(ok);
    assert_eq!(serial, sharded, "shard count must not change output");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_memo_round_trips_and_warm_starts() {
    let dir = std::env::temp_dir().join("dda_cli_batch_memo");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("p.loop"), "for i = 1 to 9 { a[i + 1] = a[i]; }").unwrap();
    std::fs::write(dir.join("q.loop"), "for i = 1 to 9 { z[i + 1] = z[i]; }").unwrap();
    std::fs::write(dir.join("manifest.txt"), "p.loop\nq.loop\n").unwrap();
    let manifest = dir.join("manifest.txt");
    let manifest = manifest.to_str().unwrap();
    let memo = dir.join("memo.txt");
    let memo_str = memo.to_str().unwrap();

    let (cold, _, ok) = run_cli(&["batch", manifest, "--memo-save", memo_str], "");
    assert!(ok);
    assert!(memo.exists());
    // The second program is the same pattern: an in-batch memo hit.
    assert!(
        cold.lines().nth(1).unwrap().contains("\"cached\":true"),
        "{cold}"
    );

    let (warm, _, ok) = run_cli(&["batch", manifest, "--memo-load", memo_str], "");
    assert!(ok);
    // Warm-started, even the first program hits the cache.
    assert!(
        warm.lines().next().unwrap().contains("\"cached\":true"),
        "{warm}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_reads_manifest_from_stdin() {
    let dir = std::env::temp_dir().join("dda_cli_batch_stdin");
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("p.loop");
    std::fs::write(&file, "for i = 1 to 9 { a[i] = a[i + 20]; }").unwrap();
    let (stdout, _, ok) = run_cli(&["batch", "-", "--stats"], &format!("{}\n", file.display()));
    assert!(ok);
    assert!(stdout.contains("\"answer\":\"independent\""), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_missing_program_file_fails_with_context() {
    let (_, stderr, ok) = run_cli(&["batch", "-"], "no_such_file.loop\n");
    assert!(!ok);
    assert!(stderr.contains("no_such_file.loop"), "{stderr}");
}

/// Zeroes every `"nanos":N` field so trace output is comparable across
/// runs (wall times are the only non-deterministic part of a trace).
fn normalize_nanos(line: &str) -> String {
    let mut out = String::new();
    let mut rest = line;
    while let Some(at) = rest.find("\"nanos\":") {
        let (head, tail) = rest.split_at(at + "\"nanos\":".len());
        out.push_str(head);
        out.push('0');
        rest = tail.trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

/// Snapshot of the `--trace` JSONL stream on the paper's worked example
/// `a[i + 1] = a[i]`: one typed event per line, from `pair_started`
/// through GCD, cascade stage, witness, refinement, to `pair_finished`.
#[test]
fn trace_emits_jsonl_event_stream() {
    let (stdout, _, ok) = run_cli(
        &["analyze", "-", "--trace"],
        "for i = 1 to 10 { a[i + 1] = a[i]; }",
    );
    assert!(ok);
    let normalized: Vec<String> = stdout.lines().map(normalize_nanos).collect();
    // `seq` is a monotonic event index; there are deliberately no
    // wall-clock timestamps, so the stream is byte-stable run to run
    // (modulo the measured `nanos` durations normalized away here).
    let expected = [
        r#"{"seq":0,"event":"pair_started","array":"a","a":0,"b":1,"common":1}"#,
        r#"{"seq":1,"event":"classified","kind":"problem","vars":2,"equations":1,"bounds":4}"#,
        r#"{"seq":2,"event":"gcd","verdict":"lattice","cached":false,"nanos":0}"#,
        r#"{"seq":3,"event":"reduced","free_vars":1,"system":["-t0 <= -2","t0 <= 11","-t0 <= -1","t0 <= 10"]}"#,
        r#"{"seq":4,"event":"stage_entered","test":"svpc","vars":1,"constraints":4,"bounded":0}"#,
        r#"{"seq":5,"event":"stage","test":"svpc","verdict":"dependent","nanos":0}"#,
        r#"{"seq":6,"event":"witness","x":[1,2]}"#,
        r#"{"seq":7,"event":"refinement_started"}"#,
        r#"{"seq":8,"event":"directions","vectors":["(<)"],"distance":"(1)","tests":0,"exact":true,"nanos":0}"#,
        r#"{"seq":9,"event":"pair_finished","answer":"dependent","by":"SVPC","cached":false}"#,
    ];
    assert_eq!(normalized, expected, "full stream:\n{stdout}");
}

#[test]
fn trace_and_plain_analyze_agree() {
    // The probe must not change the verdict: the traced run's final event
    // and the plain run's listing agree.
    let src = "for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }";
    let (traced, _, ok) = run_cli(&["analyze", "-", "--trace"], src);
    assert!(ok);
    assert!(
        traced.contains(r#""event":"pair_finished","answer":"independent""#),
        "{traced}"
    );
    let (plain, _, ok) = run_cli(&["analyze", "-"], src);
    assert!(ok);
    assert!(plain.contains("Independent"), "{plain}");
}

#[test]
fn tests_flag_reconfigures_the_pipeline() {
    // SVPC resolves this pair under the full cascade; with --tests fm the
    // same answer must come from Fourier–Motzkin instead.
    let src = "for i = 1 to 10 { a[i + 1] = a[i]; }";
    let (full, _, ok) = run_cli(&["analyze", "-"], src);
    assert!(ok);
    assert!(full.contains("by SVPC"), "{full}");
    let (fm_only, _, ok) = run_cli(&["analyze", "-", "--tests", "fm"], src);
    assert!(ok);
    assert!(fm_only.contains("by Fourier-Motzkin"), "{fm_only}");
    // The equals form and long aliases parse too.
    let (aliased, _, ok) = run_cli(&["analyze", "-", "--tests=svpc,fourier-motzkin"], src);
    assert!(ok);
    assert!(aliased.contains("by SVPC"), "{aliased}");
}

#[test]
fn tests_flag_rejects_unknown_names() {
    let (_, stderr, ok) = run_cli(&["analyze", "-", "--tests", "bogus"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown test 'bogus'"), "{stderr}");
}

#[test]
fn conditional_programs_analyze() {
    let (stdout, _, ok) = run_cli(
        &["analyze", "-"],
        "for i = 1 to 9 { if (i != 5) { a[i] = a[i + 20]; } }",
    );
    assert!(ok);
    assert!(stdout.contains("Independent"), "{stdout}");
}

/// Satellite regression: a manifest with a broken entry must fail the
/// whole batch with a located error — the path as written plus the OS
/// reason — and never emit partial JSONL for the entries before it.
#[test]
fn batch_bad_manifest_entry_is_a_located_error_and_nothing_half_runs() {
    let dir = std::env::temp_dir().join("dda_cli_batch_located");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("ok.loop"), "for i = 1 to 9 { a[i + 1] = a[i]; }").unwrap();
    let manifest = dir.join("m.txt");
    std::fs::write(&manifest, "ok.loop\nmissing.loop\n").unwrap();

    let (stdout, stderr, ok) = run_cli(&["batch", manifest.to_str().unwrap()], "");
    assert!(!ok, "broken manifest entry must exit nonzero");
    assert!(stderr.contains("missing.loop"), "{stderr}");
    assert!(stderr.contains("No such file"), "{stderr}");
    assert!(stdout.is_empty(), "no partial output: {stdout}");

    // A parse error is located too: path plus rendered excerpt.
    std::fs::write(dir.join("bad.loop"), "for i = 1 to { }").unwrap();
    std::fs::write(&manifest, "bad.loop\n").unwrap();
    let (_, stderr, ok) = run_cli(&["batch", manifest.to_str().unwrap()], "");
    assert!(!ok);
    assert!(stderr.contains("bad.loop"), "{stderr}");
    assert!(stderr.contains("parse error"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `dda serve` end to end through the binary: the service's JSONL for a
/// cold sequential submission is byte-identical to `dda batch` on the
/// same input, and graceful shutdown persists the memo table.
#[test]
fn serve_smoke_matches_batch_and_persists_memo() {
    use std::io::{BufRead, BufReader, Read as _};

    let dir = std::env::temp_dir().join("dda_cli_serve_smoke");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let program = dir.join("p.loop");
    std::fs::write(&program, "for i = 1 to 9 { a[i + 1] = a[i]; }").unwrap();
    let memo = dir.join("memo.dda");

    let (want, _, ok) = run_cli(&["batch", program.to_str().unwrap()], "");
    assert!(ok);

    let mut child = Command::new(env!("CARGO_BIN_EXE_dda"))
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--memo",
            memo.to_str().unwrap(),
        ])
        .stderr(Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("startup banner");
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("listening address")
        .to_owned();

    let post = |target: &str, body: &str| -> String {
        let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
        write!(
            conn,
            "POST {target} HTTP/1.1\r\nHost: dda\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send");
        let mut reply = String::new();
        conn.read_to_string(&mut reply).expect("recv");
        reply
    };

    // The manifest route, loading the same file `dda batch` read.
    let reply = post("/batch?check=1", &format!("{}\n", program.display()));
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    let body = reply.split_once("\r\n\r\n").expect("body").1;
    assert_eq!(body, want, "service JSONL must match `dda batch` exactly");

    let reply = post("/shutdown", "");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    let status = child.wait().expect("server exits");
    assert!(status.success(), "clean shutdown");
    assert!(memo.exists(), "shutdown persists the memo");
    std::fs::remove_dir_all(&dir).ok();
}

/// `POST /parallel` answers with the same per-loop verdict JSONL as
/// `dda parallel` on a cold memo, and the graph metrics show up in the
/// service's `/metrics` exposition afterwards.
#[test]
fn serve_parallel_matches_cli_and_exposes_graph_metrics() {
    use std::io::{BufRead, BufReader, Read as _};

    let src = "for i = 1 to 9 { for j = 1 to 9 { b[i + 1][j] = b[i][j + 1]; } }";
    let (want, _, ok) = run_cli(&["parallel", "-"], src);
    assert!(ok);

    let mut child = Command::new(env!("CARGO_BIN_EXE_dda"))
        .args(["serve", "--addr", "127.0.0.1:0"])
        .stderr(Stdio::piped())
        .spawn()
        .expect("server starts");
    let mut stderr = BufReader::new(child.stderr.take().expect("stderr piped"));
    let mut banner = String::new();
    stderr.read_line(&mut banner).expect("startup banner");
    let addr = banner
        .trim()
        .rsplit(' ')
        .next()
        .expect("listening address")
        .to_owned();

    let request = |method: &str, target: &str, body: &str| -> String {
        let mut conn = std::net::TcpStream::connect(&addr).expect("connect");
        write!(
            conn,
            "{method} {target} HTTP/1.1\r\nHost: dda\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send");
        let mut reply = String::new();
        conn.read_to_string(&mut reply).expect("recv");
        reply
    };

    let reply = request("POST", "/parallel?check=1", src);
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    let body = reply.split_once("\r\n\r\n").expect("body").1;
    assert_eq!(
        body, want,
        "service JSONL must match `dda parallel` exactly"
    );

    let metrics = request("GET", "/metrics", "");
    assert!(
        metrics.contains("dda_graph_edges_total{kind=\"flow\"} 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("dda_graph_sequential_loops_total 1"),
        "{metrics}"
    );
    assert!(
        metrics.contains("dda_graph_parallel_loops_total 1"),
        "{metrics}"
    );

    let reply = request("POST", "/shutdown", "");
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    let status = child.wait().expect("server exits");
    assert!(status.success(), "clean shutdown");
}
