//! End-to-end tests of the `dda` command-line binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_cli(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dda"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn analyze_reports_pairs() {
    let (stdout, _, ok) = run_cli(
        &["analyze", "-", "--stats"],
        "for i = 1 to 9 { a[i + 1] = a[i]; }",
    );
    assert!(ok);
    assert!(stdout.contains("Dependent"), "{stdout}");
    assert!(stdout.contains("(<)"), "{stdout}");
    assert!(stdout.contains("distance: (1)"), "{stdout}");
    assert!(stdout.contains("stats:"), "{stdout}");
}

#[test]
fn parallel_annotates_loops() {
    let (stdout, _, ok) = run_cli(
        &["parallel", "-"],
        "for i = 1 to 9 { for j = 1 to 9 { a[i][j + 1] = a[i][j]; } }",
    );
    assert!(ok);
    assert!(stdout.contains("// parallel"), "{stdout}");
    assert!(stdout.contains("// sequential"), "{stdout}");
}

#[test]
fn parse_errors_are_rendered_with_location() {
    let (_, stderr, ok) = run_cli(&["analyze", "-"], "for i = 1 to { }");
    assert!(!ok);
    assert!(stderr.contains("parse error at 1:"), "{stderr}");
}

#[test]
fn unknown_flags_rejected_with_usage() {
    let (_, stderr, ok) = run_cli(&["analyze", "-", "--bogus"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown option"), "{stderr}");
    assert!(stderr.contains("USAGE"), "{stderr}");
}

#[test]
fn help_prints_usage() {
    let (stdout, _, ok) = run_cli(&["help"], "");
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn memo_save_and_load_round_trip() {
    let dir = std::env::temp_dir().join("dda_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let memo = dir.join("memo.txt");
    let memo_str = memo.to_str().unwrap();

    let (_, _, ok) = run_cli(
        &["analyze", "-", "--memo-save", memo_str],
        "for i = 1 to 9 { a[i + 1] = a[i]; }",
    );
    assert!(ok);
    assert!(memo.exists());

    // Warm start: the same pattern (different array) hits the cache.
    let (stdout, _, ok) = run_cli(
        &["analyze", "-", "--memo-load", memo_str, "--stats"],
        "for i = 1 to 9 { z[i + 1] = z[i]; }",
    );
    assert!(ok);
    assert!(stdout.contains("[cached]"), "{stdout}");
    std::fs::remove_file(&memo).ok();
}

#[test]
fn graph_emits_dot() {
    let (stdout, _, ok) = run_cli(
        &["graph", "-"],
        "for i = 1 to 9 { a[i + 1] = a[i]; }",
    );
    assert!(ok);
    assert!(stdout.contains("digraph dependences"), "{stdout}");
    assert!(stdout.contains("flow (<) @L0"), "{stdout}");
    assert!(stdout.contains("shape=box"), "{stdout}");
}

#[test]
fn conditional_programs_analyze() {
    let (stdout, _, ok) = run_cli(
        &["analyze", "-"],
        "for i = 1 to 9 { if (i != 5) { a[i] = a[i + 20]; } }",
    );
    assert!(ok);
    assert!(stdout.contains("Independent"), "{stdout}");
}
