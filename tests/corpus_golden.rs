//! Golden tests over the kernel corpus in `tests/corpus/`: realistic
//! mini-kernels with pinned analysis summaries. A behaviour change in any
//! part of the pipeline shows up here as a readable diff.

use dda::core::{AnalyzerConfig, DependenceAnalyzer, MemoMode};
use dda::ir::{parse_program, passes};

/// A compact, stable summary of a program's analysis.
fn summarize(name: &str) -> String {
    let path = format!("{}/tests/corpus/{name}.loop", env!("CARGO_MANIFEST_DIR"));
    let source = std::fs::read_to_string(&path).expect("corpus file");
    let mut program = parse_program(&source).expect("corpus parses");
    passes::normalize(&mut program);
    let mut analyzer = DependenceAnalyzer::with_config(AnalyzerConfig {
        memo: MemoMode::Off,
        ..AnalyzerConfig::default()
    });
    let report = analyzer.analyze_program(&program);
    let mut lines = Vec::new();
    for p in report.pairs() {
        let mut vecs: Vec<String> = p
            .direction_vectors
            .iter()
            .map(ToString::to_string)
            .collect();
        vecs.sort();
        lines.push(format!(
            "{} #{}v#{} {:?} by={} dirs=[{}] dist={}",
            p.array,
            p.a_access,
            p.b_access,
            p.result.answer,
            p.result.resolved_by,
            vecs.join(" "),
            p.distance,
        ));
    }
    let s = &report.stats;
    lines.push(format!(
        "stats pairs={} indep={} const={} gcd={} assumed={} tests={}",
        s.pairs,
        s.independent_pairs,
        s.constant,
        s.gcd_independent,
        s.assumed,
        s.base_tests.total(),
    ));
    lines.join("\n")
}

#[track_caller]
fn check(name: &str, expected: &str) {
    let got = summarize(name);
    assert_eq!(
        got.trim(),
        expected.trim(),
        "\n--- golden mismatch for {name} ---\n{got}\n"
    );
}

#[test]
fn saxpy() {
    check(
        "saxpy",
        "y #0v#1 Dependent(None) by=SVPC dirs=[(=)] dist=(0)\n\
         stats pairs=1 indep=0 const=0 gcd=0 assumed=0 tests=1",
    );
}

#[test]
fn stencil2d() {
    check(
        "stencil2d",
        "a #0v#1 Dependent(None) by=SVPC dirs=[(<, =)] dist=(1, 0)\n\
         a #0v#2 Dependent(None) by=SVPC dirs=[(>, =)] dist=(-1, 0)\n\
         a #0v#3 Dependent(None) by=SVPC dirs=[(=, <)] dist=(0, 1)\n\
         a #0v#4 Dependent(None) by=SVPC dirs=[(=, >)] dist=(0, -1)\n\
         stats pairs=4 indep=0 const=0 gcd=0 assumed=0 tests=4",
    );
}

#[test]
fn reduction() {
    check(
        "reduction",
        "s #0v#1 Dependent(None) by=constant dirs=[(*)] dist=(?)\n\
         stats pairs=1 indep=0 const=1 gcd=0 assumed=0 tests=0",
    );
}

#[test]
fn histogram() {
    check(
        "histogram",
        "h #0v#1 Unknown by=assumed dirs=[(*)] dist=(?)\n\
         stats pairs=1 indep=0 const=0 gcd=0 assumed=1 tests=0",
    );
}

#[test]
fn symbolic_offset() {
    check(
        "symbolic_offset",
        "a #0v#1 Independent by=SVPC dirs=[] dist=(?)\n\
         stats pairs=1 indep=1 const=0 gcd=0 assumed=0 tests=1",
    );
}

#[test]
fn strided_induction() {
    check(
        "strided_induction",
        "a #0v#1 Dependent(None) by=SVPC dirs=[(<)] dist=(1)\n\
         stats pairs=1 indep=0 const=0 gcd=0 assumed=0 tests=1",
    );
}

#[test]
fn banded() {
    check(
        "banded",
        "w #0v#1 Dependent(None) by=Loop Residue dirs=[(<, >) (=, >) (>, >)] dist=(?, -2)\n\
         stats pairs=1 indep=0 const=0 gcd=0 assumed=0 tests=1",
    );
}

#[test]
fn lu_like() {
    // Three reads against one write; summaries pinned as a block.
    let got = summarize("lu_like");
    let expected = "\
a #0v#1 Dependent(None) by=Acyclic dirs=[(<, =, =) (=, =, =) (>, =, =)] dist=(?, 0, 0)
a #0v#2 Dependent(None) by=Acyclic dirs=[(<, =, <) (<, =, =) (=, =, <) (=, =, =)] dist=(?, 0, ?)
a #0v#3 Dependent(None) by=Acyclic dirs=[(<, <, =) (<, =, =) (=, <, =) (=, =, =)] dist=(?, ?, 0)
stats pairs=3 indep=0 const=0 gcd=0 assumed=0 tests=3";
    assert_eq!(got.trim(), expected.trim(), "\n--- lu_like ---\n{got}\n");
}
