//! Differential suite: certified verdicts vs. the inexact baselines.
//!
//! The Section 7 baselines (simple GCD, Banerjee, Wolfe's direction
//! extension) are *conservative*: they may fail to prove independence,
//! but an independence they do prove — and a direction they do rule out —
//! is claimed sound. The exact analyzer makes the mirrored claim with
//! evidence attached. Run both over the corpus and the synthetic PERFECT
//! suite and the two soundness claims must never collide:
//!
//! - a pair the baselines prove independent must not carry a
//!   kernel-verified dependence witness;
//! - an exact (kernel-verified) direction vector must survive Wolfe's
//!   pruning.
//!
//! Any collision is auto-minimized with the engine's greedy statement
//! shrinker and dumped to a `.loop` reproducer before failing, so the bug
//! is a one-file repro away.

use dda::baselines::{analyze_with_baselines, BaselineReport};
use dda::check::{check_program, CheckOutcome};
use dda::core::{Certificate, DependenceAnalyzer, Direction};
use dda::engine::minimize_program;
use dda::ir::{parse_program, passes, Program};

/// Whether the exact vector (no `*` components) is covered by some
/// baseline vector (whose `*` matches anything).
fn covered(exact: &[Direction], baseline: &[Vec<Direction>]) -> bool {
    baseline.iter().any(|b| {
        b.len() == exact.len()
            && b.iter()
                .zip(exact)
                .all(|(bd, ed)| *bd == Direction::Any || bd == ed)
    })
}

/// Runs analyzer + kernel + baselines over one program and reports the
/// first soundness collision, if any.
fn first_conflict(program: &Program) -> Option<String> {
    let report = DependenceAnalyzer::new().analyze_program(program);
    let outcomes = check_program(program, false, &report).ok()?;
    let baseline: BaselineReport = analyze_with_baselines(program, true);
    if baseline.pairs.len() != report.pairs().len() {
        return Some(format!(
            "pair universes diverge: baselines saw {}, analyzer saw {}",
            baseline.pairs.len(),
            report.pairs().len()
        ));
    }
    for ((pair, outcome), base) in report.pairs().iter().zip(&outcomes).zip(&baseline.pairs) {
        let certified_dependent = matches!(outcome, CheckOutcome::Verified)
            && matches!(
                pair.certificate,
                Certificate::Witness { .. } | Certificate::ConstantsEqual
            );
        if base.independent && certified_dependent {
            return Some(format!(
                "{} #{} vs #{}: baseline proves independence but the kernel \
                 verified a dependence witness ({:?})",
                pair.array, pair.a_access, pair.b_access, pair.certificate
            ));
        }
        if !base.independent && certified_dependent && !base.direction_vectors.is_empty() {
            for v in &pair.direction_vectors {
                if v.0.contains(&Direction::Any) {
                    continue; // only fully exact vectors are claims
                }
                let base_vecs: Vec<Vec<Direction>> =
                    base.direction_vectors.iter().map(|b| b.0.clone()).collect();
                if !covered(&v.0, &base_vecs) {
                    return Some(format!(
                        "{} #{} vs #{}: exact direction vector {v} was pruned \
                         by Wolfe's baseline ({:?})",
                        pair.array, pair.a_access, pair.b_access, base.direction_vectors
                    ));
                }
            }
        }
    }
    None
}

/// On a collision: shrink the program to the smallest statement set that
/// still collides, dump it next to the test artifacts, and panic with the
/// repro path.
fn assert_no_conflict(name: &str, program: &Program) {
    let Some(conflict) = first_conflict(program) else {
        return;
    };
    let minimized = minimize_program(program, |p| first_conflict(p).is_some());
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR"));
    std::fs::create_dir_all(dir).unwrap();
    let path = dir.join(format!("differential-repro-{name}.loop"));
    std::fs::write(&path, format!("{minimized}")).unwrap();
    panic!(
        "{name}: {conflict}\nminimized reproducer written to {}",
        path.display()
    );
}

fn parsed(src: &str) -> Program {
    let mut p = parse_program(src).expect("corpus programs parse");
    passes::normalize(&mut p);
    p
}

#[test]
fn corpus_certified_verdicts_agree_with_baselines() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut seen = 0;
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "loop") {
            continue;
        }
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        assert_no_conflict(&name, &parsed(&src));
        seen += 1;
    }
    assert!(seen >= 5, "corpus unexpectedly small: {seen} programs");
}

#[test]
fn perfect_suite_certified_verdicts_agree_with_baselines() {
    for prog in dda::perfect::perfect_suite(0.05) {
        let mut program = prog.program.clone();
        passes::normalize(&mut program);
        assert_no_conflict(prog.name(), &program);
    }
}

#[test]
fn examples_certified_verdicts_agree_with_baselines() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("examples/loops");
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_none_or(|e| e != "loop") {
            continue;
        }
        let name = path.file_stem().unwrap().to_string_lossy().into_owned();
        let src = std::fs::read_to_string(&path).unwrap();
        assert_no_conflict(&name, &parsed(&src));
    }
}
