//! Exactness validation against an execution oracle.
//!
//! The paper's central claim is that the cascaded tests are *exact* in
//! practice. Here we make that claim executable: run each program with the
//! reference interpreter, enumerate every pair of touches, and check the
//! analyzer's verdicts, direction vectors, and distances against the
//! ground truth — on a fixed corpus and on thousands of random programs.

use std::collections::{BTreeMap, BTreeSet};

use dda::core::{AnalyzerConfig, DependenceAnalyzer, Direction};
use dda::ir::interp::execute;
use dda::ir::{extract_accesses, parse_program, passes, Program};
use proptest::prelude::*;

/// Ground truth for one pair: whether it is dependent and the set of
/// observed direction relations over the common loops.
struct Truth {
    dependent: bool,
    directions: BTreeSet<Vec<Direction>>,
    distances: BTreeSet<Vec<i64>>,
}

fn direction_of(a: i64, b: i64) -> Direction {
    match a.cmp(&b) {
        std::cmp::Ordering::Less => Direction::Lt,
        std::cmp::Ordering::Equal => Direction::Eq,
        std::cmp::Ordering::Greater => Direction::Gt,
    }
}

fn ground_truth(
    touches: &[dda::ir::interp::Touch],
    a_id: usize,
    b_id: usize,
    common: usize,
) -> Truth {
    let mut truth = Truth {
        dependent: false,
        directions: BTreeSet::new(),
        distances: BTreeSet::new(),
    };
    let ta: Vec<_> = touches.iter().filter(|t| t.access_id == a_id).collect();
    let tb: Vec<_> = touches.iter().filter(|t| t.access_id == b_id).collect();
    for x in &ta {
        for y in &tb {
            if x.element != y.element {
                continue;
            }
            truth.dependent = true;
            let dirs: Vec<Direction> = (0..common)
                .map(|k| direction_of(x.iteration[k], y.iteration[k]))
                .collect();
            let dist: Vec<i64> = (0..common)
                .map(|k| y.iteration[k] - x.iteration[k])
                .collect();
            truth.directions.insert(dirs);
            truth.distances.insert(dist);
        }
    }
    truth
}

/// A reported vector covers an observed relation if every component is
/// `*` or equal.
fn covers(reported: &[Direction], observed: &[Direction]) -> bool {
    reported
        .iter()
        .zip(observed)
        .all(|(r, o)| *r == Direction::Any || r == o)
}

/// Checks one normalized program against the oracle. `symbolics` binds
/// any `read`/free scalars for execution.
fn check_program(program: &Program, symbolics: &BTreeMap<String, i64>) {
    check_program_with(program, symbolics, AnalyzerConfig::default());
}

/// Like [`check_program`] with an explicit analyzer configuration.
fn check_program_with(
    program: &Program,
    symbolics: &BTreeMap<String, i64>,
    config: AnalyzerConfig,
) {
    let touches = match execute(program, symbolics, 2_000_000) {
        Ok(t) => t,
        Err(e) => panic!("oracle execution failed: {e}\n{program}"),
    };
    let set = extract_accesses(program);
    let has_symbolics = !set.symbolics.is_empty();

    let mut analyzer = DependenceAnalyzer::with_config(config);
    let report = analyzer.analyze_program(program);

    for pair in report.pairs() {
        let common = pair.common_loop_ids.len();
        let truth = ground_truth(&touches, pair.a_access, pair.b_access, common);
        // Accesses under an `if` may not execute: "dependent" is then a
        // may-dependence and need not be realized by this execution.
        let conditional =
            set.accesses[pair.a_access].conditional || set.accesses[pair.b_access].conditional;

        // Soundness of "independent": no execution may contradict it.
        if pair.result.is_independent() {
            assert!(
                !truth.dependent,
                "analyzer claims independent but execution overlaps:\n\
                 pair {} #{}..#{} in\n{program}",
                pair.array, pair.a_access, pair.b_access
            );
            continue;
        }

        // Exactness of "dependent" (only checkable without symbolics or
        // conditionals: a symbolic dependence may need a different
        // binding, a conditional one an untaken branch).
        if pair.result.answer.is_dependent() && !has_symbolics && !conditional {
            assert!(
                truth.dependent,
                "analyzer claims (exact) dependent but execution never \
                 overlaps: pair {} #{}..#{} in\n{program}",
                pair.array, pair.a_access, pair.b_access
            );
        }

        // Every observed direction must be covered by some reported
        // vector.
        for od in &truth.directions {
            assert!(
                pair.direction_vectors.iter().any(|v| covers(&v.0, od)),
                "observed direction {od:?} not covered by {:?} for pair \
                 {} #{}..#{} in\n{program}",
                pair.direction_vectors,
                pair.array,
                pair.a_access,
                pair.b_access
            );
        }

        // Fully-refined vectors (no `*`) must be realized by execution.
        if !has_symbolics && !conditional {
            for v in &pair.direction_vectors {
                if v.0.contains(&Direction::Any) {
                    continue;
                }
                let as_dirs: Vec<Direction> = v.0.clone();
                assert!(
                    truth.directions.contains(&as_dirs),
                    "reported vector {v} never observed (observed {:?}) for \
                     pair {} #{}..#{} in\n{program}",
                    truth.directions,
                    pair.array,
                    pair.a_access,
                    pair.b_access
                );
            }
        }

        // Known distances must match every observed instance.
        for (k, d) in pair.distance.0.iter().enumerate() {
            if let Some(d) = d {
                for dist in &truth.distances {
                    assert_eq!(
                        dist[k], *d,
                        "distance mismatch at level {k} for pair {} in\n{program}",
                        pair.array
                    );
                }
            }
        }
    }
}

fn check_source(src: &str) {
    let mut program = parse_program(src).expect("parse");
    passes::normalize(&mut program);
    check_program(&program, &BTreeMap::new());
}

#[test]
fn fixed_corpus() {
    for src in [
        "for i = 1 to 10 { a[i] = a[i + 10] + 3; }",
        "for i = 1 to 10 { a[i + 1] = a[i] + 3; }",
        "for i = 1 to 10 { a[2 * i] = a[2 * i + 1]; }",
        "for i = 1 to 10 { a[2 * i] = a[2 * i + 4]; }",
        "for i1 = 1 to 10 { for i2 = 1 to 10 { a[i1][i2] = a[i2 + 10][i1 + 9]; } }",
        "for i = 0 to 10 { for j = 0 to 10 { a[i][j] = a[2 * i][j] + 7; } }",
        "for i = 1 to 4 { for j = 1 to 4 { a[i][j] = a[j][i] + 1; } }",
        "for i = 1 to 10 { for j = i to 10 { a[j + 2] = a[j] + 1; } }",
        "for i = 1 to 10 { for j = i to i + 3 { a[j] = a[j + 1] + 1; } }",
        "for i = 1 to 8 { for j = 1 to 8 { a[2 * i + j] = a[i + 2 * j + 1] + 1; } }",
        "for i = 1 to 10 { a[i][i] = a[i][i + 1]; }",
        "for i = 1 to 6 { for j = 1 to 6 { for k = 1 to 6 {
             a[2 * i + 3 * j + k] = a[i + j + 5 * k + 1] + 1; } } }",
        "for i = 1 to 9 step 2 { a[i] = a[i + 1]; }",
        "for i = 10 to 1 step -1 { a[i + 1] = a[i]; }",
        "k = 0; for i = 1 to 10 { k = k + 2; a[k] = a[k - 1]; }",
        "for i = 1 to 3 { a[b[i]] = a[i] + 1; }", // non-affine: assumed dep
        "for i = 1 to 5 { a[3] = a[4] + a[3]; }",
    ] {
        check_source(src);
    }
}

#[test]
fn symbolic_independence_holds_for_every_binding() {
    // a[i + n] vs a[i + n + 11] over i in 1..10 can never overlap, no
    // matter what n is: the exact answer is independent, and execution
    // with many bindings must agree.
    let mut program =
        parse_program("read(n); for i = 1 to 10 { a[i + n] = a[i + n + 11]; }").unwrap();
    passes::normalize(&mut program);
    let mut analyzer = DependenceAnalyzer::new();
    let report = analyzer.analyze_program(&program);
    assert!(report.pairs()[0].result.is_independent());
    for n in -30..30 {
        let mut env = BTreeMap::new();
        env.insert("n".to_owned(), n);
        let touches = execute(&program, &env, 100_000).unwrap();
        let truth = ground_truth(&touches, 0, 1, 1);
        assert!(!truth.dependent, "n = {n}");
    }
}

#[test]
fn symbolic_dependence_realized_by_some_binding() {
    let mut program =
        parse_program("read(n); for i = 1 to 10 { a[i + n] = a[i + 2 * n + 1] + 3; }").unwrap();
    passes::normalize(&mut program);
    let mut analyzer = DependenceAnalyzer::new();
    let report = analyzer.analyze_program(&program);
    assert!(report.pairs()[0].result.answer.is_dependent());
    // The witness: i = i' + n + 1; e.g. n = 0 gives distance 1... wait,
    // i + n = i' + 2n + 1 means i - i' = n + 1: realized for n in -10..8.
    let mut found = false;
    for n in -12..12 {
        let mut env = BTreeMap::new();
        env.insert("n".to_owned(), n);
        let touches = execute(&program, &env, 100_000).unwrap();
        if ground_truth(&touches, 0, 1, 1).dependent {
            found = true;
            break;
        }
    }
    assert!(found, "no binding realizes the symbolic dependence");
}

// ---------------------------------------------------------------------
// Randomized programs.
// ---------------------------------------------------------------------

/// An affine subscript over up to `depth` loop variables.
fn arb_subscript(depth: usize) -> impl Strategy<Value = String> {
    let coeff = -3i64..=3;
    let var_terms = proptest::collection::vec(coeff, depth);
    (var_terms, -6i64..=6).prop_map(move |(coeffs, c)| {
        let mut s = String::new();
        for (k, a) in coeffs.iter().enumerate() {
            if *a != 0 {
                if !s.is_empty() {
                    s.push_str(" + ");
                }
                s.push_str(&format!("{a} * v{k}"));
            }
        }
        if s.is_empty() {
            format!("{c}")
        } else {
            format!("{s} + {c}")
        }
    })
}

/// A whole random program: one nest of `depth` loops with small constant
/// (possibly triangular) bounds and 1–3 statements of 1–2-D references.
fn arb_program() -> impl Strategy<Value = String> {
    (1usize..=3)
        .prop_flat_map(|depth| {
            let bounds = proptest::collection::vec((0i64..=2, 2i64..=5, prop::bool::ANY), depth);
            let dims = 1usize..=2;
            let stmts = proptest::collection::vec(
                (
                    proptest::collection::vec(arb_subscript(depth), 2),
                    proptest::collection::vec(arb_subscript(depth), 2),
                ),
                1..=2,
            );
            (Just(depth), bounds, dims, stmts)
        })
        .prop_map(|(depth, bounds, dims, stmts)| {
            let mut src = String::new();
            for (k, (lo, hi, triangular)) in bounds.iter().enumerate() {
                let lower = if *triangular && k > 0 {
                    format!("v{}", k - 1)
                } else {
                    lo.to_string()
                };
                src.push_str(&format!("for v{k} = {lower} to {hi} {{ "));
            }
            for (n, (wsubs, rsubs)) in stmts.iter().enumerate() {
                let w: Vec<String> = wsubs.iter().take(dims).map(|s| format!("[{s}]")).collect();
                let r: Vec<String> = rsubs.iter().take(dims).map(|s| format!("[{s}]")).collect();
                let stmt = format!("arr{} = arr{} + 1; ", w.concat(), r.concat());
                if n == 1 {
                    // Exercise the conditional extension: guard the second
                    // statement on the outermost index.
                    src.push_str(&format!("if (v0 != 2) {{ {stmt}}} "));
                } else {
                    src.push_str(&stmt);
                }
            }
            for _ in 0..depth {
                src.push_str("} ");
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The analyzer's verdicts always agree with execution.
    #[test]
    fn random_programs_match_oracle(src in arb_program()) {
        check_source(&src);
    }

    /// The optional extensions (symmetric memoization, separable
    /// direction computation) never compromise exactness.
    #[test]
    fn extensions_match_oracle(src in arb_program()) {
        let mut program = parse_program(&src).expect("parse");
        passes::normalize(&mut program);
        check_program_with(&program, &BTreeMap::new(), AnalyzerConfig {
            memo_symmetry: true,
            separable_directions: true,
            ..AnalyzerConfig::default()
        });
    }
}
