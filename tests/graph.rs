//! Properties of the dependence-graph static analysis (`dda-graph`).
//!
//! Three invariants, each pinned over generated programs or the
//! synthetic PERFECT corpus:
//!
//! 1. **Parallel claims are consistent with the reports.** A loop the
//!    graph marks `Parallel` has zero pair reports carrying a
//!    dependence at its level (the analyzer's own
//!    `carried_dependence_loops` view), in every memo mode.
//! 2. **Sequential claims are re-checkable.** Every blocking edge a
//!    `Sequential` verdict cites resolves to a pair report whose
//!    certificate the independent proof-checking kernel accepts — a
//!    verdict is never grounded in a rejected proof.
//! 3. **Rendered output is deterministic.** The engine's graph batch,
//!    rendered to JSONL, is byte-identical to a serial
//!    `build_graph` loop at every worker/shard combination.

use dda::check::{check_pair, CheckOutcome};
use dda::core::{AnalyzerConfig, DependenceAnalyzer, MemoMode, ProgramReport};
use dda::engine::{Engine, EngineConfig};
use dda::graph::render::{graph_json_line, parallel_json_line};
use dda::graph::{build_graph, LoopVerdict, ProgramGraph};
use dda::ir::{extract_accesses, parse_program, passes, Program};
use proptest::prelude::*;

/// A small program mixing affine and symbolic subscripts over 1–2
/// loops — the same shape the observability proptests use, enough to
/// produce carried, loop-independent, and assumed dependences.
fn arb_program() -> impl Strategy<Value = String> {
    (1usize..=2)
        .prop_flat_map(|depth| {
            let bounds = proptest::collection::vec((0i64..=2, 2i64..=6), depth);
            let stmts = proptest::collection::vec(
                (
                    proptest::collection::vec(-2i64..=2, depth),
                    -4i64..=4,
                    proptest::collection::vec(-2i64..=2, depth),
                    -4i64..=4,
                    0u8..=9,
                ),
                1..=2,
            );
            (Just(depth), bounds, stmts)
        })
        .prop_map(|(depth, bounds, stmts)| {
            let mut src = String::new();
            for (k, (lo, hi)) in bounds.iter().enumerate() {
                src.push_str(&format!("for v{k} = {lo} to {hi} {{ "));
            }
            let sub = |coeffs: &[i64], c: i64| {
                let mut s = String::new();
                for (k, a) in coeffs.iter().enumerate() {
                    if *a != 0 {
                        if !s.is_empty() {
                            s.push_str(" + ");
                        }
                        s.push_str(&format!("{a} * v{k}"));
                    }
                }
                if s.is_empty() {
                    format!("{c}")
                } else {
                    format!("{s} + {c}")
                }
            };
            let mut symbolic = false;
            for (wc, w0, rc, r0, kind) in &stmts {
                let mut read = sub(rc, *r0);
                if *kind == 0 {
                    read = format!("{read} + n");
                    symbolic = true;
                }
                src.push_str(&format!("a[{}] = a[{read}] + 1; ", sub(wc, *w0)));
            }
            for _ in 0..depth {
                src.push_str("} ");
            }
            if symbolic {
                format!("read(n); {src}")
            } else {
                src
            }
        })
}

fn parse_batch(sources: &[String]) -> Vec<Program> {
    sources
        .iter()
        .map(|s| {
            let mut p = parse_program(s).expect("generated programs parse");
            passes::normalize(&mut p);
            p
        })
        .collect()
}

/// Invariant 1 for one (program, report): a `Parallel` loop is exactly
/// one the analyzer says no dependence is carried at, and a
/// `Sequential` loop cites at least one blocking edge, every one of
/// which is genuinely carried at that level.
fn assert_verdicts_consistent(program: &Program, report: &ProgramReport) {
    let graph = build_graph(program, report);
    let carried = report.carried_dependence_loops();
    for l in graph.loops.loops() {
        match graph.loop_verdict(l.id) {
            LoopVerdict::Parallel => {
                assert!(
                    !carried.contains(&l.id),
                    "loop {} marked parallel but the report carries a dependence there",
                    l.id
                );
            }
            LoopVerdict::Sequential { blocking_edges } => {
                assert!(
                    carried.contains(&l.id),
                    "loop {} marked sequential but no report carries a dependence there",
                    l.id
                );
                assert!(
                    !blocking_edges.is_empty(),
                    "sequential verdict for loop {} cites no blocking edge",
                    l.id
                );
                for &e in &blocking_edges {
                    assert!(
                        graph.edge_carries_at(&graph.edges[e], l.id),
                        "cited edge {e} is not carried at loop {}",
                        l.id
                    );
                }
            }
        }
    }
}

/// Invariant 2 for one graph: every blocking edge's pair report passes
/// the independent checker.
fn assert_blocking_certificates_check(program: &Program, report: &ProgramReport) {
    let graph = build_graph(program, report);
    let set = extract_accesses(program);
    for l in graph.loops.loops() {
        let LoopVerdict::Sequential { blocking_edges } = graph.loop_verdict(l.id) else {
            continue;
        };
        for e in blocking_edges {
            let pair_index = graph.edges[e].pair;
            let pair = &graph.pairs[pair_index];
            let pair_report = &report.pairs()[pair_index];
            let outcome = check_pair(
                &set.accesses[pair.a_access],
                &set.accesses[pair.b_access],
                pair.common_loop_ids.len(),
                pair_report,
            );
            assert!(
                !matches!(outcome, CheckOutcome::Rejected(_)),
                "blocking edge {e} of loop {} rests on a rejected certificate: {outcome:?}",
                l.id
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A loop marked `Parallel` has zero pair reports carrying a
    /// dependence at its level, in every memo mode; `Sequential`
    /// verdicts cite carried edges whose certificates the checker
    /// accepts.
    #[test]
    fn parallel_verdicts_match_carried_reports_in_every_memo_mode(
        sources in proptest::collection::vec(arb_program(), 1..=3),
    ) {
        let programs = parse_batch(&sources);
        for memo in [MemoMode::Off, MemoMode::Simple, MemoMode::Improved] {
            let config = AnalyzerConfig { memo, ..AnalyzerConfig::default() };
            let mut analyzer = DependenceAnalyzer::with_config(config);
            for p in &programs {
                let report = analyzer.analyze_program(p);
                assert_verdicts_consistent(p, &report);
                assert_blocking_certificates_check(p, &report);
            }
        }
    }

    /// Engine-built graphs, rendered to both JSONL forms, are
    /// byte-identical to a serial `build_graph` loop at every
    /// worker/shard combination.
    #[test]
    fn rendered_graphs_bit_identical_across_workers_and_shards(
        sources in proptest::collection::vec(arb_program(), 1..=3),
    ) {
        let programs = parse_batch(&sources);
        let render = |graphs: &[ProgramGraph]| -> String {
            let mut out = String::new();
            for (k, g) in graphs.iter().enumerate() {
                out.push_str(&graph_json_line(&format!("p{k}"), g));
                out.push('\n');
                out.push_str(&parallel_json_line(&format!("p{k}"), g));
                out.push('\n');
            }
            out
        };
        let want = {
            let mut analyzer = DependenceAnalyzer::new();
            let graphs: Vec<ProgramGraph> = programs
                .iter()
                .map(|p| build_graph(p, &analyzer.analyze_program(p)))
                .collect();
            render(&graphs)
        };
        for workers in [1usize, 3] {
            for shards in [1usize, 4] {
                let config = EngineConfig { workers, shards, ..EngineConfig::default() };
                let mut engine = Engine::with_config(config);
                let out = engine.graph_programs(&programs);
                prop_assert_eq!(
                    &render(&out.graphs),
                    &want,
                    "workers={} shards={}",
                    workers,
                    shards
                );
            }
        }
    }
}

/// Every loop in the synthetic PERFECT corpus gets a verdict, the
/// verdicts agree with the analyzer's carried-loop view, and the
/// corpus exercises both sides (some parallel loops, some sequential,
/// blocking certificates all checkable).
#[test]
fn perfect_corpus_classifies_every_loop() {
    let mut parallel = 0usize;
    let mut sequential = 0usize;
    for prog in dda::perfect::perfect_suite(0.2) {
        let mut program = parse_program(&prog.source).expect("PERFECT programs parse");
        passes::normalize(&mut program);
        let mut analyzer = DependenceAnalyzer::new();
        let report = analyzer.analyze_program(&program);
        assert_verdicts_consistent(&program, &report);
        assert_blocking_certificates_check(&program, &report);
        let graph = build_graph(&program, &report);
        let verdicts = graph.loop_verdicts();
        assert_eq!(
            verdicts.len(),
            graph.loops.len(),
            "{}: every loop needs a verdict",
            prog.name()
        );
        for v in &verdicts {
            if v.is_parallel() {
                parallel += 1;
            } else {
                sequential += 1;
            }
        }
    }
    assert!(parallel > 0, "corpus should contain parallel loops");
    assert!(sequential > 0, "corpus should contain sequential loops");
}
