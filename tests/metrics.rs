//! End-to-end tests of `--metrics` and `--profile`, validated with the
//! in-repo Prometheus exposition parser ([`dda::obs::prom`]).
//!
//! The warm-start test doubles as the CI smoke property: counters are
//! monotone across two runs when the second warm-starts from the
//! first's persisted memo (same queries, at least as many hits, and a
//! nonzero warm-load count).

use std::io::Write;
use std::process::{Command, Stdio};

use dda::obs::prom::{parse_exposition, Exposition};

fn run_cli(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_dda"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

fn manifest_path() -> String {
    format!("{}/examples/loops/manifest.txt", env!("CARGO_MANIFEST_DIR"))
}

fn loop_files() -> Vec<String> {
    let dir = format!("{}/examples/loops", env!("CARGO_MANIFEST_DIR"));
    let mut files: Vec<String> = std::fs::read_dir(dir)
        .expect("examples/loops exists")
        .filter_map(|e| {
            let p = e.expect("dir entry").path();
            p.extension()
                .is_some_and(|x| x == "loop")
                .then(|| p.to_string_lossy().into_owned())
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "examples/loops has .loop files");
    files
}

/// Unique scratch path (tests in one binary run concurrently).
fn scratch(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("dda-metrics-{}-{name}", std::process::id()))
}

fn batch_exposition(extra: &[&str]) -> Exposition {
    let manifest = manifest_path();
    let mut args = vec!["batch", manifest.as_str(), "--metrics=prom"];
    args.extend_from_slice(extra);
    let (_, stderr, ok) = run_cli(&args, "");
    assert!(ok, "batch run failed:\n{stderr}");
    parse_exposition(&stderr).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{stderr}"))
}

#[test]
fn batch_prom_exposition_is_valid_and_covers_the_pipeline() {
    // `parse_exposition` itself rejects duplicate metric names, unknown
    // or redeclared types, samples without a TYPE, non-finite values and
    // negative counters — so a successful parse is most of the test.
    let exp = batch_exposition(&[]);

    for (name, kind) in [
        ("dda_stage_latency_nanos", "summary"),
        ("dda_gcd_latency_nanos", "summary"),
        ("dda_refinement_latency_nanos", "summary"),
        ("dda_stage_verdicts_total", "counter"),
        ("dda_memo_hits_total", "counter"),
        ("dda_memo_misses_total", "counter"),
        ("dda_memo_warm_loads_total", "counter"),
        ("dda_memo_shard_ops_total", "counter"),
        ("dda_memo_entries", "gauge"),
        ("dda_engine_workers", "gauge"),
        ("dda_engine_utilization_ratio", "gauge"),
        ("dda_engine_tasks_total", "counter"),
    ] {
        assert_eq!(
            exp.types.get(name).map(String::as_str),
            Some(kind),
            "metric {name} must be declared as a {kind}"
        );
    }

    // Stage latency summaries cover all four cascade stages at the
    // three advertised quantiles.
    for stage in ["svpc", "acyclic", "residue", "fm"] {
        for q in ["0.5", "0.9", "0.99"] {
            assert!(
                exp.value(
                    "dda_stage_latency_nanos",
                    &[("stage", stage), ("quantile", q)]
                )
                .is_some(),
                "missing stage latency quantile {q} for {stage}"
            );
        }
        assert!(
            exp.value("dda_stage_latency_nanos_count", &[("stage", stage)])
                .is_some(),
            "missing latency count for {stage}"
        );
    }

    // The manifest's programs produce real traffic: pairs were
    // analyzed and both memo tables were queried.
    assert!(exp.value("dda_pairs_total", &[]).unwrap_or(0.0) > 0.0);
    for table in ["full", "gcd"] {
        assert!(
            exp.value("dda_memo_queries_total", &[("table", table)])
                .unwrap_or(0.0)
                > 0.0,
            "{table} memo saw no queries"
        );
    }
    let util = exp
        .value("dda_engine_utilization_ratio", &[])
        .expect("utilization present");
    assert!(
        (0.0..=1.0).contains(&util),
        "utilization {util} outside [0, 1]"
    );
}

#[test]
fn parallel_exposition_includes_the_graph_section() {
    // `dda parallel` routes through the engine's graph batch, so the
    // exposition gains the graph section: edge counters by dependence
    // class, loop verdict counters, and the build-time summary. The
    // parser validates shape; the values must match the manifest's
    // known contents (9 pairs over 6 programs, 12 loops of which 4 are
    // parallel — see tests/cli.rs and the CI smoke step).
    let manifest = manifest_path();
    let (_, stderr, ok) = run_cli(&["parallel", manifest.as_str(), "--metrics=prom"], "");
    assert!(ok, "parallel run failed:\n{stderr}");
    let exp =
        parse_exposition(&stderr).unwrap_or_else(|e| panic!("invalid exposition: {e}\n{stderr}"));

    assert_eq!(
        exp.types.get("dda_graph_edges_total").map(String::as_str),
        Some("counter")
    );
    let flow = exp
        .value("dda_graph_edges_total", &[("kind", "flow")])
        .expect("flow edge counter present");
    assert!(flow > 0.0, "manifest programs have flow dependences");
    let parallel = exp
        .value("dda_graph_parallel_loops_total", &[])
        .expect("parallel loop counter");
    let sequential = exp
        .value("dda_graph_sequential_loops_total", &[])
        .expect("sequential loop counter");
    assert_eq!(parallel, 4.0, "parallel loops over examples/loops");
    assert_eq!(sequential, 8.0, "sequential loops over examples/loops");
    let builds = exp
        .value("dda_graph_build_latency_nanos_count", &[])
        .expect("build latency count");
    assert_eq!(builds, 6.0, "one graph build per manifest program");

    // A plain batch run must NOT grow a graph section: graph metrics
    // exist only once a graph has actually been built.
    let exp = batch_exposition(&[]);
    assert!(
        !exp.types.contains_key("dda_graph_edges_total"),
        "batch exposition must not contain graph metrics"
    );
}

#[test]
fn counters_are_monotone_across_warm_started_runs() {
    let memo = scratch("warm.memo");
    let memo_str = memo.to_string_lossy().into_owned();
    let cold = batch_exposition(&["--memo-save", &memo_str]);
    let warm = batch_exposition(&["--memo-load", &memo_str]);
    let _ = std::fs::remove_file(&memo);

    let v = |exp: &Exposition, name: &str, table: &str| {
        exp.value(name, &[("table", table)])
            .unwrap_or_else(|| panic!("{name}{{table={table}}} missing"))
    };
    for table in ["full", "gcd"] {
        // Same batch, so table traffic is identical...
        assert_eq!(
            v(&cold, "dda_memo_queries_total", table),
            v(&warm, "dda_memo_queries_total", table),
            "{table}: queries must not depend on warm start"
        );
        // ...but the warm run is pre-populated: it loaded entries from
        // the persisted file and can only hit more, never less.
        assert!(
            v(&warm, "dda_memo_warm_loads_total", table) > 0.0,
            "{table}: warm run loaded no entries"
        );
        assert_eq!(v(&cold, "dda_memo_warm_loads_total", table), 0.0);
        assert!(
            v(&warm, "dda_memo_hits_total", table) >= v(&cold, "dda_memo_hits_total", table),
            "{table}: hits regressed across warm start"
        );
    }
    // Verdict counters are deterministic batch-to-batch.
    assert_eq!(
        cold.value("dda_pairs_total", &[]),
        warm.value("dda_pairs_total", &[])
    );
}

#[test]
fn metrics_json_is_emitted_on_stderr_for_serial_analyze() {
    let (stdout, stderr, ok) = run_cli(
        &["analyze", "-", "--metrics=json"],
        "for i = 1 to 9 { a[i + 1] = a[i]; }",
    );
    assert!(ok, "{stderr}");
    // Verdicts stay on stdout, the snapshot on stderr.
    assert!(stdout.contains("Dependent"), "{stdout}");
    let line = stderr.trim();
    assert!(
        line.starts_with('{') && line.ends_with('}'),
        "not a JSON object: {stderr}"
    );
    for key in ["\"stages\":", "\"gcd\":", "\"pairs\":", "\"memo\":"] {
        assert!(line.contains(key), "missing {key}: {stderr}");
    }
    // Serial runs have no worker pool; the engine section is absent.
    assert!(!line.contains("\"engine\":"), "{stderr}");
}

#[test]
fn batch_accepts_loop_files_directly_and_profiles_them() {
    let dir = scratch("profile");
    let dir_str = dir.to_string_lossy().into_owned();
    let files = loop_files();
    let mut args = vec!["batch"];
    args.extend(files.iter().map(String::as_str));
    args.extend_from_slice(&["--profile", &dir_str]);
    let (stdout, stderr, ok) = run_cli(&args, "");
    assert!(ok, "{stderr}");
    assert_eq!(
        stdout.lines().count(),
        files.len(),
        "one JSON report per .loop input:\n{stdout}"
    );

    let spans = std::fs::read_to_string(dir.join("spans.jsonl")).expect("spans.jsonl written");
    let folded =
        std::fs::read_to_string(dir.join("profile.folded")).expect("profile.folded written");
    let _ = std::fs::remove_dir_all(&dir);

    // One root span per program, seq numbers monotone from 0, and no
    // wall-clock timestamps anywhere (byte-stable by design).
    let roots = spans.lines().filter(|l| l.contains("\"depth\":0")).count();
    assert_eq!(roots, files.len(), "{spans}");
    for (i, line) in spans.lines().enumerate() {
        assert!(
            line.starts_with(&format!("{{\"seq\":{i},")),
            "seq not monotone at line {i}: {line}"
        );
        assert!(!line.contains("timestamp"), "{line}");
    }
    // Folded stacks are rooted at the analyze spans and carry counts.
    assert!(!folded.is_empty());
    for line in folded.lines() {
        assert!(line.starts_with("analyze:"), "unrooted stack: {line}");
        let (_, count) = line.rsplit_once(' ').expect("folded line has a count");
        assert!(count.parse::<u64>().is_ok(), "bad folded line: {line}");
    }
}
