//! Determinism proptests: observability never changes analysis results.
//!
//! The hard invariant of the `dda-obs` layer is that probes only watch.
//! These properties pin it down end to end:
//!
//! 1. A serial analyzer run with a [`MetricsProbe`] (and a
//!    [`SpanRecorder`]) attached produces reports and statistics
//!    bit-identical to a bare run — `ProgramReport: PartialEq` covers
//!    per-pair verdicts, vectors, distances, cache flags and the full
//!    `AnalysisStats`.
//! 2. The engine — whose metrics registry is always on — matches the
//!    bare serial analyzer at every worker/shard combination, so the
//!    always-on instrumentation cannot perturb batch results either.
//! 3. Request-scoped tracing is invisible: `analyze_batch_traced` /
//!    `graph_batch_traced` with a [`TraceContext`] attached produce
//!    reports, stats, spliced/resolved splits, and rendered JSONL
//!    bit-identical to the untraced entry points — across worker and
//!    shard counts, and on both cold and warm memo tables.
//! 4. The flight recorder stays off the analysis path: a capture
//!    directory that cannot be created degrades to a metered error
//!    counter, never an analysis failure.

use dda::core::{AnalyzerConfig, DependenceAnalyzer, MemoMode, ProgramReport, SharedMemo};
use dda::engine::{
    analyze_batch, analyze_batch_traced, graph_batch, graph_batch_traced, Deadline, Engine,
    EngineConfig,
};
use dda::graph::render::parallel_json_line;
use dda::ir::{parse_program, passes, Program};
use dda::obs::{MetricsProbe, MetricsRegistry, SpanRecorder, TraceContext, TraceId};
use dda::serve::render::batch_json_line;
use proptest::prelude::*;

/// A small program mixing affine and symbolic subscripts over 1–2
/// loops, enough to reach every cascade stage and both memo tables.
fn arb_program() -> impl Strategy<Value = String> {
    (1usize..=2)
        .prop_flat_map(|depth| {
            let bounds = proptest::collection::vec((0i64..=2, 2i64..=6), depth);
            let stmts = proptest::collection::vec(
                (
                    proptest::collection::vec(-2i64..=2, depth),
                    -4i64..=4,
                    proptest::collection::vec(-2i64..=2, depth),
                    -4i64..=4,
                    0u8..=9,
                ),
                1..=2,
            );
            (Just(depth), bounds, stmts)
        })
        .prop_map(|(depth, bounds, stmts)| {
            let mut src = String::new();
            for (k, (lo, hi)) in bounds.iter().enumerate() {
                src.push_str(&format!("for v{k} = {lo} to {hi} {{ "));
            }
            let sub = |coeffs: &[i64], c: i64| {
                let mut s = String::new();
                for (k, a) in coeffs.iter().enumerate() {
                    if *a != 0 {
                        if !s.is_empty() {
                            s.push_str(" + ");
                        }
                        s.push_str(&format!("{a} * v{k}"));
                    }
                }
                if s.is_empty() {
                    format!("{c}")
                } else {
                    format!("{s} + {c}")
                }
            };
            let mut symbolic = false;
            for (wc, w0, rc, r0, kind) in &stmts {
                let mut read = sub(rc, *r0);
                if *kind == 0 {
                    read = format!("{read} + n");
                    symbolic = true;
                }
                src.push_str(&format!("a[{}] = a[{read}] + 1; ", sub(wc, *w0)));
            }
            for _ in 0..depth {
                src.push_str("} ");
            }
            if symbolic {
                format!("read(n); {src}")
            } else {
                src
            }
        })
}

fn parse_batch(sources: &[String]) -> Vec<Program> {
    sources
        .iter()
        .map(|s| {
            let mut p = parse_program(s).expect("generated programs parse");
            passes::normalize(&mut p);
            p
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Serial analyzer: bare vs metrics-probed vs span-probed runs are
    /// bit-identical, for every memo mode.
    #[test]
    fn serial_results_identical_with_metrics_attached(
        sources in proptest::collection::vec(arb_program(), 1..=3),
    ) {
        let programs = parse_batch(&sources);
        for memo in [MemoMode::Off, MemoMode::Simple, MemoMode::Improved] {
            let config = AnalyzerConfig { memo, ..AnalyzerConfig::default() };

            let mut bare = DependenceAnalyzer::with_config(config);
            let want: Vec<ProgramReport> =
                programs.iter().map(|p| bare.analyze_program(p)).collect();

            let registry = MetricsRegistry::new();
            let mut probe = MetricsProbe::new(&registry);
            let mut metered = DependenceAnalyzer::with_config(config);
            let got: Vec<ProgramReport> = programs
                .iter()
                .map(|p| metered.analyze_program_probed(p, &mut probe))
                .collect();
            prop_assert_eq!(&got, &want, "metrics probe changed results (memo {:?})", memo);
            prop_assert_eq!(metered.stats(), bare.stats());

            let mut spans = SpanRecorder::new();
            let mut spanned = DependenceAnalyzer::with_config(config);
            let got: Vec<ProgramReport> = programs
                .iter()
                .map(|p| {
                    spans.begin_program("prog");
                    spanned.analyze_program_probed(p, &mut spans)
                })
                .collect();
            prop_assert_eq!(&got, &want, "span recorder changed results (memo {:?})", memo);
            prop_assert_eq!(spanned.stats(), bare.stats());
        }
    }

    /// Engine (metrics always on) vs bare serial analyzer, across
    /// worker and shard counts.
    #[test]
    fn engine_results_identical_across_workers_and_shards(
        sources in proptest::collection::vec(arb_program(), 1..=3),
    ) {
        let programs = parse_batch(&sources);
        let mut serial = DependenceAnalyzer::new();
        let want: Vec<ProgramReport> =
            programs.iter().map(|p| serial.analyze_program(p)).collect();
        for workers in [1usize, 4] {
            for shards in [1usize, 3] {
                let mut engine = Engine::with_config(EngineConfig {
                    workers,
                    shards,
                    memo_mode: MemoMode::Improved,
                    analyzer: AnalyzerConfig::default(),
                    check: false,
                });
                let got = engine.analyze_programs(&programs);
                prop_assert_eq!(
                    &got, &want,
                    "engine diverged at workers={} shards={}", workers, shards
                );
                prop_assert_eq!(engine.stats(), serial.stats());
            }
        }
    }

    /// Request-scoped tracing is pure telemetry: the traced batch entry
    /// points match the untraced ones bit for bit — reports, cumulative
    /// stats, the incremental spliced/resolved split, and the service's
    /// rendered JSONL — on cold *and* warm memo tables, across
    /// worker/shard combinations.
    #[test]
    fn traced_batches_identical_to_untraced(
        sources in proptest::collection::vec(arb_program(), 1..=3),
    ) {
        let programs = parse_batch(&sources);
        for (workers, shards) in [(1usize, 1usize), (4, 3)] {
            let config = EngineConfig {
                workers,
                shards,
                memo_mode: MemoMode::Improved,
                analyzer: AnalyzerConfig::default(),
                check: false,
            };
            let bare_memo = SharedMemo::new(shards);
            let bare_obs = MetricsRegistry::new();
            let traced_memo = SharedMemo::new(shards);
            let traced_obs = MetricsRegistry::new();

            // Round 1 runs cold, round 2 re-analyzes the same batch on
            // the now-warm tables (memo hits flow through the traced
            // forwarders too).
            for round in ["cold", "warm"] {
                let want = analyze_batch(
                    &config, &bare_memo, &bare_obs, &programs, Deadline::none(),
                );
                let ctx = TraceContext::new(TraceId(0xdda0_0b50_0000_0001));
                let got = analyze_batch_traced(
                    &config, &traced_memo, &traced_obs, &programs,
                    Deadline::none(), Some(&ctx),
                );
                prop_assert_eq!(
                    &got.reports, &want.reports,
                    "tracing changed verdicts ({} round, workers={} shards={})",
                    round, workers, shards
                );
                prop_assert_eq!(&got.stats, &want.stats);
                prop_assert_eq!(got.spliced, want.spliced);
                prop_assert_eq!(got.resolved, want.resolved);
                prop_assert_eq!(got.deadline_exceeded, want.deadline_exceeded);
                for (w, g) in want.reports.iter().zip(&got.reports) {
                    prop_assert_eq!(
                        batch_json_line("p.loop", w),
                        batch_json_line("p.loop", g),
                        "tracing changed rendered JSONL ({} round)", round
                    );
                }
            }

            // Graph batches too: verdict JSONL must match untraced.
            let g_want = graph_batch(
                &config, &bare_memo, &bare_obs, &programs, Deadline::none(),
            );
            let ctx = TraceContext::new(TraceId(7));
            let g_got = graph_batch_traced(
                &config, &traced_memo, &traced_obs, &programs,
                Deadline::none(), Some(&ctx),
            );
            prop_assert_eq!(&g_got.batch.reports, &g_want.batch.reports);
            for (w, g) in g_want.graphs.iter().zip(&g_got.graphs) {
                prop_assert_eq!(
                    parallel_json_line("p.loop", w),
                    parallel_json_line("p.loop", g),
                    "tracing changed graph JSONL"
                );
            }
        }
    }
}

/// Capture-dir write failure degrades to a metered counter: pointing
/// the store at a path whose parent is a regular file makes every
/// capture attempt fail, the error counter ticks, and nothing panics
/// or propagates into the analysis path.
#[test]
fn capture_failure_is_metered_not_fatal() {
    use dda::obs::{CaptureStore, RequestSummary};
    let dir = std::env::temp_dir().join(format!("dda_obs_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "not a directory").unwrap();

    let store = CaptureStore::new(blocker.join("captures"), 0, 4);
    let summary = RequestSummary::blank(TraceId(0x77), "/analyze");
    store.capture(&summary);
    store.capture(&summary);
    assert_eq!(store.errors(), 2, "each failed capture must be metered");
    assert_eq!(store.captured(), 0);
    assert!(store.read(TraceId(0x77)).is_none());
    std::fs::remove_dir_all(&dir).ok();
}
