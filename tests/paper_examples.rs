//! Every worked example in the paper, end to end.

use dda::core::{
    AnalyzerConfig, DependenceAnalyzer, Direction, DirectionVector, MemoMode, ResolvedBy, TestKind,
};
use dda::ir::{parse_program, passes};

fn analyze(src: &str) -> dda::core::ProgramReport {
    let mut program = parse_program(src).expect("parse");
    passes::normalize(&mut program);
    DependenceAnalyzer::new().analyze_program(&program)
}

#[test]
fn section1_opening_loops() {
    let r = analyze("for i = 1 to 10 { a[i] = a[i + 10] + 3; }");
    assert!(r.pairs()[0].result.is_independent());

    let r = analyze("for i = 1 to 10 { a[i + 1] = a[i] + 3; }");
    let p = &r.pairs()[0];
    assert!(p.result.answer.is_dependent());
    assert_eq!(p.distance.0, vec![Some(1)]);
    assert_eq!(
        p.direction_vectors,
        vec![DirectionVector(vec![Direction::Lt])]
    );
}

#[test]
fn section31_gcd_change_of_variables() {
    // "for i = 1 to 10 do a[i+10] = a[i]": exact answer independent via
    // the transformed single-variable constraints.
    let r = analyze("for i = 1 to 10 { a[i + 10] = a[i]; }");
    let p = &r.pairs()[0];
    assert!(p.result.is_independent());
    assert_eq!(p.result.resolved_by, ResolvedBy::Test(TestKind::Svpc));
}

#[test]
fn section32_coupled_subscripts() {
    // The SVPC worked example: lower bound of t1 exceeds its upper bound.
    let r = analyze(
        "for i1 = 1 to 10 { for i2 = 1 to 10 {
             a[i1][i2] = a[i2 + 10][i1 + 9];
         } }",
    );
    let p = &r.pairs()[0];
    assert!(p.result.is_independent());
    assert_eq!(p.result.resolved_by, ResolvedBy::Test(TestKind::Svpc));
}

#[test]
fn section32_svpc_friendly_shapes() {
    // The two loop shapes the paper lists as SVPC-amenable despite being
    // multi-dimensional.
    let r = analyze(
        "for i1 = 1 to 10 { for i2 = 1 to 10 {
             a[i1][i2] = a[i1 + 3][i2 + 2];
         } }",
    );
    assert_eq!(
        r.pairs()[0].result.resolved_by,
        ResolvedBy::Test(TestKind::Svpc)
    );
    assert!(r.pairs()[0].result.answer.is_dependent());
    assert_eq!(r.pairs()[0].distance.0, vec![Some(-3), Some(-2)]);
}

#[test]
fn section5_memoization_example() {
    // The two two-loop programs that collapse to the same single-loop
    // problem under the improved scheme.
    let src = "
        for i = 1 to 10 { for j = 1 to 10 { a[i + 10] = a[i] + 3; } }
        for i = 1 to 10 { for j = 1 to 10 { b[j + 10] = b[j] + 3; } }
        for i = 1 to 10 { c[i + 10] = c[i] + 3; }
    ";
    let mut program = parse_program(src).unwrap();
    passes::normalize(&mut program);
    let mut improved = DependenceAnalyzer::new();
    let ri = improved.analyze_program(&program);
    assert_eq!(ri.stats.memo_queries, 3);
    assert_eq!(ri.stats.memo_hits, 2, "all three collapse");

    let mut simple = DependenceAnalyzer::with_config(AnalyzerConfig {
        memo: MemoMode::Simple,
        ..AnalyzerConfig::default()
    });
    let rs = simple.analyze_program(&program);
    assert_eq!(rs.stats.memo_hits, 0, "simple scheme sees three inputs");

    // All verdicts agree regardless of scheme.
    for (a, b) in ri.pairs().iter().zip(rs.pairs()) {
        assert_eq!(a.result, b.result);
        assert_eq!(a.distance, b.distance);
    }
}

#[test]
fn section6_direction_vector_examples() {
    // a[i+1] = a[i]+7: dependent, sequential.
    let r = analyze("for i = 1 to 10 { a[i + 1] = a[i] + 7; }");
    assert!(!r.carried_dependence_loops().is_empty());

    // a[i] = a[i]+7: dependent only at (=): parallel.
    let r = analyze("for i = 1 to 10 { a[i] = a[i] + 7; }");
    let p = &r.pairs()[0];
    assert!(p.result.answer.is_dependent());
    assert!(p.direction_vectors[0].is_all_eq());
    assert!(r.carried_dependence_loops().is_empty());

    // a[i] = a[i-3]+7: constant distance 3 read straight off the GCD
    // solution, no extra tests.
    let mut program = parse_program("for i = 0 to 10 { a[i] = a[i - 3] + 7; }").unwrap();
    passes::normalize(&mut program);
    let mut an = DependenceAnalyzer::new();
    let r = an.analyze_program(&program);
    // Write a[i] meets read a[i′ − 3] when i′ = i + 3: distance +3.
    assert_eq!(r.pairs()[0].distance.0, vec![Some(3)]);
    assert_eq!(r.stats.direction_tests.total(), 0, "distance pruning");
}

#[test]
fn section6_unused_variable_star() {
    // "Since i does not appear in either the array expression nor in a
    // loop bound, we know that direction for i is *."
    let r = analyze("for i = 1 to 10 { for j = 1 to 10 { a[j + 5] = a[j]; } }");
    let p = &r.pairs()[0];
    assert_eq!(
        p.direction_vectors,
        vec![DirectionVector(vec![Direction::Any, Direction::Lt])]
    );
}

#[test]
fn section8_symbolic_examples() {
    // The induction-variable prepass example, fully symbolic.
    let r = analyze(
        "n = 100;
         iz = 0;
         for i = 1 to 10 {
             iz = iz + 2;
             a[iz + n] = a[iz + 2 * n + 1] + 3;
         }",
    );
    // With n = 100 propagated: a[2i+100] vs a[2i+201]: parity differs.
    assert!(r.pairs()[0].result.is_independent());
    assert_eq!(r.pairs()[0].result.resolved_by, ResolvedBy::Gcd);

    // With n truly unknown the equation i − i' = n + 1 is solvable for
    // some n: dependent.
    let r = analyze("read(n); for i = 1 to 10 { a[i + n] = a[i + 2 * n + 1] + 3; }");
    assert!(r.pairs()[0].result.answer.is_dependent());
    assert!(r.pairs()[0].result.answer.is_exact());
}

#[test]
fn equivalence_reduction_ip_to_dependence() {
    // Section 2.1 reduces integer programming to dependence testing by
    // encoding A x = b in subscripts. Spot-check the encoding style:
    // 3x + 5y = 22 with x, y >= 0 has a solution.
    let r = analyze(
        "for x = 0 to 100 { for y = 0 to 100 {
             a[3 * x + 5 * y] = a[22];
         } }",
    );
    assert!(r.pairs()[0].result.answer.is_dependent());
    // 3x + 6y = 22 does not (gcd 3 does not divide 22).
    let r = analyze(
        "for x = 0 to 100 { for y = 0 to 100 {
             a[3 * x + 6 * y] = a[22];
         } }",
    );
    assert!(r.pairs()[0].result.is_independent());
    assert_eq!(r.pairs()[0].result.resolved_by, ResolvedBy::Gcd);
}
