//! Snapshot tests for the `parallelizer` example's annotated output.
//!
//! The example is a thin wrapper over `dda::graph` (`analyze_program` →
//! `build_graph` → `annotate_source`); these tests run the same four
//! kernels through the same three calls and pin the annotated source
//! byte for byte, so a change to loop numbering, verdict logic, or the
//! annotation format shows up as a readable diff here.

use dda::core::DependenceAnalyzer;
use dda::graph::{build_graph, render::annotate_source};
use dda::ir::parse_program;

/// The example's pipeline: normalize, analyze, build the graph,
/// annotate.
fn annotated(src: &str) -> String {
    let mut program = parse_program(src).expect("kernel parses");
    dda::ir::passes::normalize(&mut program);
    let mut analyzer = DependenceAnalyzer::new();
    let report = analyzer.analyze_program(&program);
    let graph = build_graph(&program, &report);
    annotate_source(&program, &graph)
}

#[test]
fn stencil_keeps_the_outer_loop_parallel() {
    let out = annotated(
        "for i = 1 to 100 {
             for j = 1 to 100 {
                 a[i][j + 1] = a[i][j] + b[i][j];
             }
         }",
    );
    assert_eq!(
        out,
        "for i = 1 to 100 {   // parallel\n\
         \x20   for j = 1 to 100 {   // sequential\n\
         \x20       a[i][j + 1] = a[i][j] + b[i][j];\n\
         \x20   }\n\
         }\n"
    );
}

#[test]
fn transpose_copy_is_fully_parallel() {
    let out = annotated(
        "for i = 1 to 100 {
             for j = 1 to 100 {
                 c[i][j] = d[j][i];
             }
         }",
    );
    assert_eq!(
        out,
        "for i = 1 to 100 {   // parallel\n\
         \x20   for j = 1 to 100 {   // parallel\n\
         \x20       c[i][j] = d[j][i];\n\
         \x20   }\n\
         }\n"
    );
}

#[test]
fn wavefront_serializes_both_loops() {
    let out = annotated(
        "for i = 2 to 100 {
             for j = 2 to 100 {
                 a[i][j] = a[i - 1][j] + a[i][j - 1];
             }
         }",
    );
    assert_eq!(
        out,
        "for i = 2 to 100 {   // sequential\n\
         \x20   for j = 2 to 100 {   // sequential\n\
         \x20       a[i][j] = a[i - 1][j] + a[i][j - 1];\n\
         \x20   }\n\
         }\n"
    );
}

#[test]
fn induction_kernel_round_trips_through_the_prepasses() {
    let out = annotated(
        "read(n);
         iz = 0;
         for i = 1 to 10 {
             iz = iz + 2;
             a[iz + n] = a[iz + 2 * n + 1] + 3;
         }",
    );
    assert_eq!(
        out,
        "read(n);\n\
         iz = 0;\n\
         for i = 1 to 10 {   // sequential\n\
         \x20   iz = iz + 2;\n\
         \x20   a[2 * (i - 1 + 1) + n] = a[2 * (i - 1 + 1) + 2 * n + 1] + 3;\n\
         }\n"
    );
}
