//! Cross-crate pipeline tests: messy sources through parsing,
//! normalization, extraction, and analysis.

use dda::core::{AnalyzerConfig, DependenceAnalyzer, MemoMode, ResolvedBy};
use dda::ir::{extract_accesses, parse_program, passes, reference_pairs};

fn analyze_normalized(src: &str) -> dda::core::ProgramReport {
    let mut program = parse_program(src).expect("parse");
    passes::normalize(&mut program);
    DependenceAnalyzer::new().analyze_program(&program)
}

#[test]
fn scalar_temporaries_are_substituted_away() {
    // Without forward substitution the subscripts are unanalyzable; the
    // prepass makes them affine and the pair exactly independent.
    let r = analyze_normalized(
        "base = 100;
         stride = 2;
         for i = 1 to 10 {
             off = stride * i + base;
             a[off] = a[off + 1] + 3;
         }",
    );
    assert_eq!(r.stats.assumed, 0);
    assert!(r.pairs()[0].result.is_independent());
}

#[test]
fn strided_loops_normalize_then_analyze() {
    // Step-3 loop: after normalization a[3i'+1] vs a[3i'+2]: disjoint
    // residues mod 3.
    let r = analyze_normalized("for i = 1 to 30 step 3 { a[i] = a[i + 1]; }");
    assert!(r.pairs()[0].result.is_independent());
    assert_eq!(r.pairs()[0].result.resolved_by, ResolvedBy::Gcd);

    // Step-3 with offset 3: same residue, truly dependent.
    let r = analyze_normalized("for i = 1 to 30 step 3 { a[i] = a[i + 3]; }");
    assert!(r.pairs()[0].result.answer.is_dependent());
}

#[test]
fn downward_loops() {
    let r = analyze_normalized("for i = 10 to 1 step -1 { a[i + 1] = a[i]; }");
    let p = &r.pairs()[0];
    assert!(p.result.answer.is_dependent());
    // In normalized space the write at iteration k touches 12 − k... the
    // dependence is still carried: sequential.
    assert!(!r.carried_dependence_loops().is_empty());
}

#[test]
fn induction_chain_through_two_passes() {
    let r = analyze_normalized(
        "k = 0;
         for i = 1 to 20 {
             k = k + 1;
             a[2 * k] = a[2 * k + 1];
         }",
    );
    assert_eq!(r.stats.assumed, 0);
    assert!(r.pairs()[0].result.is_independent(), "odd vs even");
}

#[test]
fn mixed_affine_and_opaque_references() {
    let r = analyze_normalized(
        "for i = 1 to 10 {
             a[i * i] = a[i] + 1;
             b[i] = b[i + 20];
         }",
    );
    // The quadratic pair is assumed dependent; the affine pair is still
    // analyzed exactly.
    assert_eq!(r.stats.assumed, 1);
    let b_pair = r.pairs().iter().find(|p| p.array == "b").unwrap();
    assert!(b_pair.result.is_independent());
    let a_pair = r.pairs().iter().find(|p| p.array == "a").unwrap();
    assert!(!a_pair.result.answer.is_exact());
}

#[test]
fn multiple_statements_share_memo_entries() {
    let mut src = String::new();
    for k in 0..50 {
        src.push_str(&format!("for i = 1 to 10 {{ x{k}[i + 4] = x{k}[i]; }}\n"));
    }
    let mut program = parse_program(&src).unwrap();
    passes::normalize(&mut program);
    let mut an = DependenceAnalyzer::new();
    let r = an.analyze_program(&program);
    assert_eq!(r.stats.pairs, 50);
    assert_eq!(r.stats.memo_hits, 49);
    assert_eq!(r.stats.base_tests.total(), 1);
    // Every cached answer equals the computed one.
    for p in r.pairs() {
        assert_eq!(p.result, r.pairs()[0].result);
        assert_eq!(p.direction_vectors, r.pairs()[0].direction_vectors);
    }
}

#[test]
fn read_read_pairs_only_when_requested() {
    let src = "for i = 1 to 10 { s[i] = a[i] + a[i + 1]; }";
    let program = parse_program(src).unwrap();
    let set = extract_accesses(&program);
    // s has a single access and a has two reads: nothing to test by
    // default.
    assert_eq!(reference_pairs(&set, false).len(), 0);
    let mut with_input = DependenceAnalyzer::with_config(AnalyzerConfig {
        include_input_deps: true,
        ..AnalyzerConfig::default()
    });
    let r = with_input.analyze_program(&program);
    assert_eq!(r.stats.pairs, 1, "the a-read pair appears");
}

#[test]
fn cache_expansion_matches_fresh_analysis() {
    // The improved memo collapses these; the expanded cached vectors must
    // equal what a fresh analyzer computes.
    let one = "for j = 1 to 10 { z[j + 5] = z[j]; }";
    let two = "for i = 1 to 10 { for j = 1 to 10 { z[j + 5] = z[j]; } }";

    let mut shared = DependenceAnalyzer::new();
    let p1 = {
        let mut p = parse_program(one).unwrap();
        passes::normalize(&mut p);
        p
    };
    let p2 = {
        let mut p = parse_program(two).unwrap();
        passes::normalize(&mut p);
        p
    };
    let r1 = shared.analyze_program(&p1);
    let r2_cached = shared.analyze_program(&p2); // hits the cache
    assert_eq!(r2_cached.stats.memo_hits, 1);

    let r2_fresh = DependenceAnalyzer::new().analyze_program(&p2);
    let (c, f) = (&r2_cached.pairs()[0], &r2_fresh.pairs()[0]);
    assert_eq!(c.result, f.result);
    assert_eq!(c.direction_vectors, f.direction_vectors);
    assert_eq!(c.distance, f.distance);
    assert!(c.from_cache && !f.from_cache);
    let _ = r1;
}

#[test]
fn deep_nest_with_triangular_bounds() {
    let r = analyze_normalized(
        "for i = 1 to 8 {
             for j = i to 8 {
                 for k = j to 8 {
                     a[i][j][k] = a[i][j][k - 1] + 1;
                 }
             }
         }",
    );
    let p = &r.pairs()[0];
    assert!(p.result.answer.is_dependent());
    assert_eq!(p.distance.0, vec![Some(0), Some(0), Some(1)]);
    // Only the innermost loop carries the dependence.
    assert_eq!(r.carried_dependence_loops().len(), 1);
}

#[test]
fn analyzer_memo_mode_off_still_exact() {
    let src = "for i = 1 to 10 { a[i + 2] = a[i]; }";
    let program = parse_program(src).unwrap();
    let mut off = DependenceAnalyzer::with_config(AnalyzerConfig {
        memo: MemoMode::Off,
        ..AnalyzerConfig::default()
    });
    let r = off.analyze_program(&program);
    assert_eq!(r.stats.memo_queries, 0);
    assert_eq!(r.pairs()[0].distance.0, vec![Some(2)]);
}
